package multirate

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

// senseCtrlAct builds sense -> ctrl -> act on three nodes.
func senseCtrlAct(t testing.TB) (*dag.Graph, dag.TaskID, dag.TaskID, dag.TaskID) {
	t.Helper()
	g := dag.New()
	sense := g.MustAddTask("sense", "n0", 300)
	ctrl := g.MustAddTask("ctrl", "n1", 1000)
	act := g.MustAddTask("act", "n2", 200)
	g.MustConnect(sense, ctrl, 8)
	g.MustConnect(ctrl, act, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, sense, ctrl, act
}

func TestUnrollSingleRateIsIdentityShaped(t *testing.T) {
	g, sense, ctrl, act := senseCtrlAct(t)
	res, err := Unroll(Spec{App: g})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumTasks() != 3 || res.Graph.NumMessages() != 2 {
		t.Errorf("unrolled shape %d/%d, want 3/2", res.Graph.NumTasks(), res.Graph.NumMessages())
	}
	for _, id := range []dag.TaskID{sense, ctrl, act} {
		if len(res.Instances[id]) != 1 {
			t.Errorf("task %d has %d instances, want 1", id, len(res.Instances[id]))
		}
	}
}

func TestUnrollOversamplingActuator(t *testing.T) {
	// The actuator runs twice per hyperperiod; both instances consume
	// the single control output.
	g, _, ctrl, act := senseCtrlAct(t)
	res, err := Unroll(Spec{App: g, Rates: map[dag.TaskID]int{act: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances[act]); got != 2 {
		t.Fatalf("actuator instances = %d, want 2", got)
	}
	ctrlInst := res.Instances[ctrl][0]
	m, ok := res.Graph.MessageOf(ctrlInst)
	if !ok {
		t.Fatal("control instance emits no message")
	}
	if len(m.Dests) != 2 {
		t.Errorf("control message feeds %d instances, want both actuator instances", len(m.Dests))
	}
	// Messages: sense#0 and ctrl#0 only — oversampling must not clone
	// producer floods.
	if res.Graph.NumMessages() != 2 {
		t.Errorf("unrolled messages = %d, want 2", res.Graph.NumMessages())
	}
}

func TestUnrollUndersamplingConsumer(t *testing.T) {
	// The sensor runs 4x, the controller 2x: controller instance j
	// consumes sensor instance 2j.
	g, sense, ctrl, _ := senseCtrlAct(t)
	res, err := Unroll(Spec{App: g, Rates: map[dag.TaskID]int{sense: 4, ctrl: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		cInst := res.Instances[ctrl][j]
		anc := res.Graph.MsgAncestors(cInst)
		// Exactly one sensor message feeds each control instance.
		found := 0
		for _, m := range anc {
			msg := res.Graph.Message(m)
			if msg.Source == res.Instances[sense][2*j] {
				found++
			}
		}
		if found != 1 {
			t.Errorf("ctrl#%d does not consume sense#%d: ancestors %v", j, 2*j, anc)
		}
	}
	// Sensor instances 1 and 3 feed nobody, and the 1x actuator consumes
	// only ctrl#0 — so exactly sense#0, sense#2 and ctrl#0 emit.
	if res.Graph.NumMessages() != 3 {
		t.Errorf("messages = %d, want 3", res.Graph.NumMessages())
	}
}

func TestUnrollSerializesSameNodeInstances(t *testing.T) {
	g, sense, _, _ := senseCtrlAct(t)
	res, err := Unroll(Spec{App: g, Rates: map[dag.TaskID]int{sense: 3}})
	if err != nil {
		t.Fatal(err)
	}
	insts := res.Instances[sense]
	for k := 1; k < len(insts); k++ {
		if !res.Graph.Reaches(insts[k-1], insts[k]) {
			t.Errorf("instance %d not ordered before %d", k-1, k)
		}
		if !res.Graph.OrderOnly(insts[k-1], insts[k]) {
			t.Errorf("serialization edge %d->%d should be order-only", k-1, k)
		}
	}
	// Order edges must not pollute reliability: instance 1's message
	// ancestors are empty (it is a source).
	if anc := res.Graph.MsgAncestors(insts[1]); len(anc) != 0 {
		t.Errorf("serialization edge leaked reliability ancestors: %v", anc)
	}
}

func TestUnrollValidatesRates(t *testing.T) {
	g, sense, _, _ := senseCtrlAct(t)
	if _, err := Unroll(Spec{App: g, Rates: map[dag.TaskID]int{sense: 0}}); !errors.Is(err, ErrBadRate) {
		t.Errorf("zero rate: %v, want ErrBadRate", err)
	}
	if _, err := Unroll(Spec{}); err == nil {
		t.Error("nil app accepted")
	}
}

func TestUnrolledGraphSchedules(t *testing.T) {
	// End-to-end: unroll a 2x-actuation app, spread weakly-hard
	// constraints over the instances, schedule, and audit.
	g, _, _, act := senseCtrlAct(t)
	res, err := Unroll(Spec{App: g, Rates: map[dag.TaskID]int{act: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cons := SpreadConstraints(res, map[dag.TaskID]wh.MissConstraint{
		act: {Misses: 12, Window: 40},
	})
	if len(cons) != 2 {
		t.Fatalf("spread constraints = %d, want 2", len(cons))
	}
	p := &core.Problem{
		App:      res.Graph,
		Params:   glossy.DefaultParams(),
		Diameter: 3,
		Mode:     core.WeaklyHard,
		WHStat:   glossy.SyntheticWH{},
		WHCons:   cons,
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(res.Graph); err != nil {
		t.Fatalf("unrolled schedule invalid: %v", err)
	}
	for inst := range cons {
		guar, ok, err := core.SatisfiedWH(p, s, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("instance %d has no networked predecessors", inst)
		}
		if !wh.SufficientlyImpliesMiss(guar, cons[inst]) {
			t.Errorf("instance %d guarantee %v misses requirement", inst, guar)
		}
	}
}

func TestUnrollMIMOWithMixedRates(t *testing.T) {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	rates := make(map[dag.TaskID]int)
	for i, a := range apps.Actuators(g) {
		rates[a] = 1 + i%2 // alternate 1x and 2x actuation
	}
	res, err := Unroll(Spec{App: g, Rates: rates})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("unrolled MIMO invalid: %v", err)
	}
	want := 13 + 2 // two actuators doubled
	if res.Graph.NumTasks() != want {
		t.Errorf("unrolled tasks = %d, want %d", res.Graph.NumTasks(), want)
	}
}

// TestUnrollRates235FreshestProducer is the shared-node regression for
// the rate-transition rule: with rates {2,3,5} in both the over- and
// undersampling direction, the freshest producer instance ⌊j·r(τ)/r(μ)⌋
// must always be serialized before the consumer instance that reads it —
// a violation would either invert a sample (consumer runs first on the
// shared node) or cycle the unrolled graph and fail validation.
func TestUnrollRates235FreshestProducer(t *testing.T) {
	for _, tc := range []struct {
		name    string
		rT, rM  int // producer τ, consumer μ
		rM2, rN int // producer μ, consumer ν
	}{
		{"oversampling", 2, 3, 3, 5},
		{"undersampling", 5, 3, 3, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := dag.New()
			tau := g.MustAddTask("tau", "shared", 100)
			mu := g.MustAddTask("mu", "shared", 100)
			nu := g.MustAddTask("nu", "shared", 100)
			g.MustConnectOrder(tau, mu)
			g.MustConnectOrder(mu, nu)
			res, err := Unroll(Spec{App: g, Rates: map[dag.TaskID]int{
				tau: tc.rT, mu: tc.rM, nu: tc.rN,
			}})
			if err != nil {
				t.Fatal(err)
			}
			check := func(prod, cons dag.TaskID, rProd, rCons int) {
				t.Helper()
				for j := 0; j < rCons; j++ {
					i := j * rProd / rCons
					p, c := res.Instances[prod][i], res.Instances[cons][j]
					if !res.Graph.Reaches(p, c) {
						t.Errorf("freshest producer %s#%d not serialized before consumer %s#%d",
							g.Task(prod).Name, i, g.Task(cons).Name, j)
					}
				}
			}
			check(tau, mu, tc.rT, tc.rM)
			check(mu, nu, tc.rM2, tc.rN)
		})
	}
}

// TestSerializationPhaseOrder235 pins the exact rational phase order on
// a node hosting three tasks at rates 2, 3 and 5: the serialization
// chain must interleave their instances by i/r compared as rationals
// (0, 0, 0, 1/5, 1/3, 2/5, 1/2, 3/5, 2/3, 4/5), with phase-0 ties
// broken by dependency order. The a -> b -> c order edges satisfy the
// base graph's same-node validation without adding bus traffic.
func TestSerializationPhaseOrder235(t *testing.T) {
	g := dag.New()
	a := g.MustAddTask("a", "shared", 100)
	b := g.MustAddTask("b", "shared", 100)
	c := g.MustAddTask("c", "shared", 100)
	g.MustConnectOrder(a, b)
	g.MustConnectOrder(b, c)
	res, err := Unroll(Spec{App: g, Rates: map[dag.TaskID]int{a: 2, b: 3, c: 5}})
	if err != nil {
		t.Fatal(err)
	}
	ai, bi, ci := res.Instances[a], res.Instances[b], res.Instances[c]
	want := []dag.TaskID{
		ai[0], bi[0], ci[0], // phase 0 (topological tie-break)
		ci[1], // 1/5
		bi[1], // 1/3
		ci[2], // 2/5
		ai[1], // 1/2
		ci[3], // 3/5
		bi[2], // 2/3
		ci[4], // 4/5
	}
	for k := 1; k < len(want); k++ {
		if !res.Graph.Reaches(want[k-1], want[k]) {
			t.Errorf("position %d: instance %d not serialized before %d", k, want[k-1], want[k])
		}
		if res.Graph.Reaches(want[k], want[k-1]) {
			t.Errorf("position %d: serialization order inverted", k)
		}
	}
}

func TestInstanceName(t *testing.T) {
	if InstanceName("ctrl", 3) != "ctrl#3" {
		t.Errorf("InstanceName = %q", InstanceName("ctrl", 3))
	}
}

// TestUnrollRejectsReservedNames pins the collision fix: a base task
// whose name contains '#' would alias with an unrolled instance name
// (task "a#1" vs instance 1 of task "a"), so Unroll rejects it with
// ErrReservedName — even at rate 1, where the unrolled names would
// happen not to collide, so the contract does not depend on the rates.
func TestUnrollRejectsReservedNames(t *testing.T) {
	g := dag.New()
	a := g.MustAddTask("a", "n0", 100)
	g.MustConnect(a, g.MustAddTask("a#1", "n1", 100), 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, rates := range map[string]map[dag.TaskID]int{
		"with rates":    {a: 2},
		"without rates": nil,
	} {
		if _, err := Unroll(Spec{App: g, Rates: rates}); !errors.Is(err, ErrReservedName) {
			t.Errorf("%s: err = %v, want ErrReservedName", name, err)
		}
	}
}

// TestChainsOrderedByBaseTask pins the instance-metadata contract
// consumed by core's symmetry breaking: one chain per base task, in
// base-task-ID order, instances in phase order.
func TestChainsOrderedByBaseTask(t *testing.T) {
	g, sense, ctrl, act := senseCtrlAct(t)
	res, err := Unroll(Spec{App: g, Rates: map[dag.TaskID]int{sense: 4, ctrl: 2}})
	if err != nil {
		t.Fatal(err)
	}
	chains := res.Chains()
	if len(chains) != 3 {
		t.Fatalf("chains = %d, want 3", len(chains))
	}
	for i, base := range []dag.TaskID{sense, ctrl, act} {
		if len(chains[i]) != len(res.Instances[base]) {
			t.Fatalf("chain %d length %d, want %d", i, len(chains[i]), len(res.Instances[base]))
		}
		for k, inst := range res.Instances[base] {
			if chains[i][k] != inst {
				t.Errorf("chain %d[%d] = %d, want instance %d of base %d", i, k, chains[i][k], inst, base)
			}
		}
	}
}

// TestRateTransitionProperty is the randomized contract of the
// rate-transition rule: for random chains with random rate pairs, every
// consumer instance μ#j reads exactly producer instance τ#⌊j·r(τ)/r(μ)⌋
// (oversampling consumers reuse the latest sample, undersampling
// consumers skip instances), no other producer instance feeds it, and
// the unrolled graph always passes Validate().
func TestRateTransitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		g := dag.New()
		depth := 2 + rng.Intn(3)
		ids := make([]dag.TaskID, depth)
		rates := make(map[dag.TaskID]int, depth)
		sameNode := rng.Intn(2) == 0
		for d := 0; d < depth; d++ {
			node := fmt.Sprintf("n%d", d)
			if sameNode {
				node = "shared"
			}
			ids[d] = g.MustAddTask(fmt.Sprintf("t%d", d), node, int64(100+rng.Intn(900)))
			rates[ids[d]] = 1 + rng.Intn(6)
			if d > 0 {
				g.MustConnect(ids[d-1], ids[d], 4+rng.Intn(12))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		res, err := Unroll(Spec{App: g, Rates: rates})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("trial %d: unrolled graph invalid: %v", trial, err)
		}
		for d := 1; d < depth; d++ {
			prod, cons := ids[d-1], ids[d]
			rP, rC := rates[prod], rates[cons]
			for j := 0; j < rC; j++ {
				want := res.Instances[prod][j*rP/rC]
				cInst := res.Instances[cons][j]
				got := 0
				for _, p := range res.Graph.Preds(cInst) {
					if res.Graph.OrderOnly(p, cInst) {
						continue
					}
					if !res.Graph.ConsumesMessage(p, cInst) {
						continue
					}
					got++
					if p != want {
						t.Fatalf("trial %d: consumer t%d#%d reads %d, want t%d#%d (= %d)",
							trial, d, j, p, d-1, j*rP/rC, want)
					}
				}
				if got != 1 {
					t.Fatalf("trial %d: consumer t%d#%d has %d data producers, want 1", trial, d, j, got)
				}
			}
			// Undersampling skips: producer instances outside the image of
			// ⌊j·rP/rC⌋ must feed no instance of this consumer.
			read := make(map[dag.TaskID]bool, rC)
			for j := 0; j < rC; j++ {
				read[res.Instances[prod][j*rP/rC]] = true
			}
			for _, pInst := range res.Instances[prod] {
				if read[pInst] {
					continue
				}
				m, ok := res.Graph.MessageOf(pInst)
				if ok && len(m.Dests) > 0 {
					t.Fatalf("trial %d: skipped producer instance %d still feeds %v", trial, pInst, m.Dests)
				}
			}
		}
	}
}
