package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP(4); err == nil {
		t.Error("single-layer network accepted")
	}
	if _, err := NewMLP(4, 0, 1); err == nil {
		t.Error("zero-width layer accepted")
	}
	m, err := NewMLP(4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4*8 + 8 + 8*1 + 1 = 49.
	if got := m.NumWeights(); got != 49 {
		t.Errorf("NumWeights = %d, want 49", got)
	}
}

func TestSetWeightsValidation(t *testing.T) {
	m, _ := NewMLP(2, 2, 1)
	if err := m.SetWeights(make([]float64, 3)); err == nil {
		t.Error("wrong-length weights accepted")
	}
	if err := m.SetWeights(make([]float64, m.NumWeights())); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
}

func TestForwardShapeAndRange(t *testing.T) {
	m, _ := NewMLP(3, 5, 2)
	w := make([]float64, m.NumWeights())
	rng := rand.New(rand.NewSource(1))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	out, err := m.Forward([]float64{0.5, -0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("output size %d, want 2", len(out))
	}
	for _, v := range out {
		if v < -1 || v > 1 {
			t.Errorf("tanh output %v outside [-1,1]", v)
		}
	}
	if _, err := m.Forward([]float64{1, 2}); err == nil {
		t.Error("wrong input size accepted")
	}
}

func TestForwardZeroWeightsIsZero(t *testing.T) {
	m, _ := NewMLP(4, 8, 1)
	out, err := m.Forward([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Errorf("zero network output = %v, want 0", out[0])
	}
}

func TestForwardKnownValue(t *testing.T) {
	// 1-1 network: out = tanh(w*x + b).
	m, _ := NewMLP(1, 1)
	if err := m.SetWeights([]float64{2, 0.5}); err != nil {
		t.Fatal(err)
	}
	out, err := m.Forward([]float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Tanh(2*0.25 + 0.5)
	if math.Abs(out[0]-want) > 1e-12 {
		t.Errorf("Forward = %v, want %v", out[0], want)
	}
}

func TestWeightsIsCopy(t *testing.T) {
	m, _ := NewMLP(1, 1)
	w := m.Weights()
	w[0] = 42
	if m.Weights()[0] == 42 {
		t.Error("Weights leaked internal state")
	}
}

func TestCEMOptimizesQuadratic(t *testing.T) {
	// Maximize -(w - target)^2 over a 1-1 network's two parameters.
	m, _ := NewMLP(1, 1)
	target := []float64{1.5, -0.75}
	obj := func(net *MLP, _ *rand.Rand) float64 {
		w := net.Weights()
		s := 0.0
		for i := range w {
			d := w[i] - target[i]
			s -= d * d
		}
		return s
	}
	cfg := DefaultCEM()
	cfg.Iterations = 40
	best, score, err := CEM(m, cfg, obj)
	if err != nil {
		t.Fatal(err)
	}
	if score < -0.01 {
		t.Errorf("CEM converged to score %v, want ~0", score)
	}
	for i := range best {
		if math.Abs(best[i]-target[i]) > 0.2 {
			t.Errorf("weight %d = %v, want ~%v", i, best[i], target[i])
		}
	}
}

func TestCEMDeterministicUnderSeed(t *testing.T) {
	obj := func(net *MLP, _ *rand.Rand) float64 {
		w := net.Weights()
		return -w[0] * w[0]
	}
	m1, _ := NewMLP(1, 1)
	m2, _ := NewMLP(1, 1)
	cfg := DefaultCEM()
	cfg.Iterations = 5
	b1, s1, err := CEM(m1, cfg, obj)
	if err != nil {
		t.Fatal(err)
	}
	b2, s2, _ := CEM(m2, cfg, obj)
	if s1 != s2 {
		t.Errorf("CEM scores differ under identical seeds: %v vs %v", s1, s2)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("CEM weights differ under identical seeds")
		}
	}
}

func TestCEMValidation(t *testing.T) {
	m, _ := NewMLP(1, 1)
	if _, _, err := CEM(m, DefaultCEM(), nil); err == nil {
		t.Error("nil objective accepted")
	}
	bad := DefaultCEM()
	bad.Population = 1
	if _, _, err := CEM(m, bad, func(*MLP, *rand.Rand) float64 { return 0 }); err == nil {
		t.Error("population of 1 accepted")
	}
}
