// Package nn implements the small multilayer perceptron and the
// cross-entropy-method trainer that stand in for the paper's
// "state-of-the-art neural network controller" in the §IV-C cartpole
// experiment. The paper does not specify its controller; fig. 3 only
// requires a competent learned policy whose performance degrades as
// weakly-hard faults are injected, which a tanh MLP trained by CEM
// provides deterministically and without external dependencies.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// MLP is a fully connected network with tanh hidden activations and a
// tanh output (control in [-1, 1]).
type MLP struct {
	sizes   []int // layer widths, e.g. [4, 8, 1]
	weights []float64
}

// NewMLP builds a zero-initialized network with the given layer sizes.
func NewMLP(sizes ...int) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, errors.New("nn: need at least input and output layers")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("nn: invalid layer size %d", s)
		}
	}
	m := &MLP{sizes: append([]int(nil), sizes...)}
	m.weights = make([]float64, m.NumWeights())
	return m, nil
}

// NumWeights returns the parameter count (weights plus biases).
func (m *MLP) NumWeights() int {
	n := 0
	for i := 0; i+1 < len(m.sizes); i++ {
		n += m.sizes[i]*m.sizes[i+1] + m.sizes[i+1]
	}
	return n
}

// SetWeights replaces the parameter vector.
func (m *MLP) SetWeights(w []float64) error {
	if len(w) != m.NumWeights() {
		return fmt.Errorf("nn: weight vector length %d, want %d", len(w), m.NumWeights())
	}
	copy(m.weights, w)
	return nil
}

// Weights returns a copy of the parameter vector.
func (m *MLP) Weights() []float64 { return append([]float64(nil), m.weights...) }

// Forward evaluates the network.
func (m *MLP) Forward(in []float64) ([]float64, error) {
	if len(in) != m.sizes[0] {
		return nil, fmt.Errorf("nn: input size %d, want %d", len(in), m.sizes[0])
	}
	cur := append([]float64(nil), in...)
	off := 0
	for l := 0; l+1 < len(m.sizes); l++ {
		ni, no := m.sizes[l], m.sizes[l+1]
		next := make([]float64, no)
		for j := 0; j < no; j++ {
			sum := 0.0
			for i := 0; i < ni; i++ {
				sum += cur[i] * m.weights[off+j*ni+i]
			}
			sum += m.weights[off+ni*no+j] // bias
			next[j] = math.Tanh(sum)
		}
		off += ni*no + no
		cur = next
	}
	return cur, nil
}

// CEMConfig parameterizes the cross-entropy-method trainer.
type CEMConfig struct {
	Population int     // candidates per generation
	EliteFrac  float64 // fraction kept to refit the sampling distribution
	Iterations int
	InitStd    float64
	NoiseDecay float64 // multiplicative std decay per generation
	Seed       int64
}

// DefaultCEM is a configuration that reliably solves cartpole within a
// second on a laptop-class machine.
func DefaultCEM() CEMConfig {
	return CEMConfig{
		Population: 48,
		EliteFrac:  0.2,
		Iterations: 20,
		InitStd:    1.0,
		NoiseDecay: 0.95,
		Seed:       7,
	}
}

// CEM maximizes the objective over the MLP's weight space: each
// generation samples a Gaussian population around the current mean,
// evaluates it, and refits mean/std to the elites. The objective receives
// a candidate network and an RNG (derived deterministically from the
// seed) and returns a score to maximize. It returns the best weights and
// score found.
func CEM(m *MLP, cfg CEMConfig, objective func(*MLP, *rand.Rand) float64) ([]float64, float64, error) {
	if objective == nil {
		return nil, 0, errors.New("nn: nil objective")
	}
	if cfg.Population < 2 || cfg.EliteFrac <= 0 || cfg.EliteFrac > 1 || cfg.Iterations < 1 {
		return nil, 0, fmt.Errorf("nn: invalid CEM config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := m.NumWeights()
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for i := range std {
		std[i] = cfg.InitStd
	}
	nElite := int(float64(cfg.Population) * cfg.EliteFrac)
	if nElite < 1 {
		nElite = 1
	}
	type cand struct {
		w     []float64
		score float64
	}
	bestW := make([]float64, dim)
	bestScore := math.Inf(-1)
	for it := 0; it < cfg.Iterations; it++ {
		pop := make([]cand, cfg.Population)
		for c := range pop {
			w := make([]float64, dim)
			for i := range w {
				w[i] = mean[i] + std[i]*rng.NormFloat64()
			}
			if err := m.SetWeights(w); err != nil {
				return nil, 0, err
			}
			score := objective(m, rand.New(rand.NewSource(cfg.Seed+int64(it*cfg.Population+c))))
			pop[c] = cand{w: w, score: score}
		}
		sort.Slice(pop, func(i, j int) bool { return pop[i].score > pop[j].score })
		if pop[0].score > bestScore {
			bestScore = pop[0].score
			copy(bestW, pop[0].w)
		}
		for i := 0; i < dim; i++ {
			sum := 0.0
			for e := 0; e < nElite; e++ {
				sum += pop[e].w[i]
			}
			mu := sum / float64(nElite)
			varsum := 0.0
			for e := 0; e < nElite; e++ {
				dev := pop[e].w[i] - mu
				varsum += dev * dev
			}
			mean[i] = mu
			std[i] = math.Sqrt(varsum/float64(nElite)) + 0.01
			std[i] *= cfg.NoiseDecay
		}
	}
	if err := m.SetWeights(bestW); err != nil {
		return nil, 0, err
	}
	return bestW, bestScore, nil
}
