package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAG builds a random layered graph from a seed (forward edges
// only, hence always acyclic).
func randomDAG(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	n := 3 + rng.Intn(8)
	ids := make([]TaskID, n)
	for i := range ids {
		ids[i] = g.MustAddTask(taskName(i), nodeName(i), int64(rng.Intn(900)+100))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				g.MustConnect(ids[i], ids[j], rng.Intn(16)+1)
			}
		}
	}
	return g
}

func taskName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }
func nodeName(i int) string { return "node" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

// Property: topological order respects every edge, on random DAGs.
func TestQuickTopoOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make(map[TaskID]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, tk := range g.Tasks() {
			for _, s := range g.Succs(tk.ID) {
				if pos[tk.ID] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Reaches is consistent with direct edges and transitive.
func TestQuickReachesTransitive(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed)
		reach := func(a, b TaskID) bool { return g.Reaches(a, b) }
		for _, tk := range g.Tasks() {
			for _, s := range g.Succs(tk.ID) {
				if !reach(tk.ID, s) {
					return false
				}
				for _, s2 := range g.Succs(s) {
					if !reach(tk.ID, s2) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every message ancestor of a task is the message of a task
// that reaches it; and the direct producers' messages are included.
func TestQuickMsgAncestorsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed)
		for _, tk := range g.Tasks() {
			anc := g.MsgAncestors(tk.ID)
			ancSet := make(map[MsgID]bool, len(anc))
			for _, m := range anc {
				if !g.Reaches(g.Message(m).Source, tk.ID) {
					return false
				}
				ancSet[m] = true
			}
			for _, p := range g.Preds(tk.ID) {
				if g.ConsumesMessage(p, tk.ID) {
					m, _ := g.MessageOf(p)
					if !ancSet[m.ID] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated round assignment is valid and the earliest
// assignment is minimal round-count.
func TestQuickLineGraphAssignments(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed)
		lg, err := NewLineGraph(g)
		if err != nil {
			return false
		}
		if lg.NumMessages() > 6 {
			return true // keep enumeration cheap
		}
		ok := true
		count := 0
		lg.EnumerateAssignments(lg.MinRounds()+1, func(l []int) bool {
			count++
			if !lg.ValidAssignment(l) {
				ok = false
				return false
			}
			return count < 2000
		})
		if lg.NumMessages() > 0 && count == 0 {
			return false // earliest assignment must always exist
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
