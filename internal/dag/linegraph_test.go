package dag

import "testing"

// fanDAG builds: s1, s2 -> c -> a1, a2 (four messages: s1, s2, c; wait —
// only tasks that emit edges have messages: s1, s2, c).
func fanDAG(t testing.TB) (*Graph, *LineGraph) {
	t.Helper()
	g := New()
	s1 := g.MustAddTask("s1", "n0", 10)
	s2 := g.MustAddTask("s2", "n1", 10)
	c := g.MustAddTask("c", "n2", 20)
	a1 := g.MustAddTask("a1", "n3", 5)
	a2 := g.MustAddTask("a2", "n4", 5)
	g.MustConnect(s1, c, 4)
	g.MustConnect(s2, c, 4)
	g.MustConnect(c, a1, 2)
	g.MustConnect(c, a2, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	lg, err := NewLineGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, lg
}

func TestLineGraphStructure(t *testing.T) {
	g, lg := fanDAG(t)
	if lg.NumMessages() != 3 {
		t.Fatalf("NumMessages = %d, want 3", lg.NumMessages())
	}
	s1, _ := g.TaskByName("s1")
	s2, _ := g.TaskByName("s2")
	c, _ := g.TaskByName("c")
	m1, _ := g.MessageOf(s1.ID)
	m2, _ := g.MessageOf(s2.ID)
	mc, _ := g.MessageOf(c.ID)
	if lg.Depth(m1.ID) != 0 || lg.Depth(m2.ID) != 0 {
		t.Errorf("sensor messages should have depth 0")
	}
	if lg.Depth(mc.ID) != 1 {
		t.Errorf("control message depth = %d, want 1", lg.Depth(mc.ID))
	}
	if got := lg.Succs(m1.ID); len(got) != 1 || got[0] != mc.ID {
		t.Errorf("Succs(m1) = %v, want [%d]", got, mc.ID)
	}
	if got := lg.Preds(mc.ID); len(got) != 2 {
		t.Errorf("Preds(mc) = %v, want two", got)
	}
	if lg.MinRounds() != 2 {
		t.Errorf("MinRounds = %d, want 2", lg.MinRounds())
	}
}

func TestValidAssignment(t *testing.T) {
	_, lg := fanDAG(t)
	// Messages 0,1 are sensor messages; 2 is the control message.
	if !lg.ValidAssignment([]int{0, 0, 1}) {
		t.Error("ASAP assignment rejected")
	}
	if !lg.ValidAssignment([]int{0, 1, 2}) {
		t.Error("spread assignment rejected")
	}
	if lg.ValidAssignment([]int{0, 0, 0}) {
		t.Error("assignment violating precedence accepted")
	}
	if lg.ValidAssignment([]int{1, 0, 1}) {
		t.Error("assignment with equal round across an edge accepted")
	}
	if lg.ValidAssignment([]int{0, 0}) {
		t.Error("short assignment accepted")
	}
	if lg.ValidAssignment([]int{0, -1, 1}) {
		t.Error("negative round accepted")
	}
}

func TestEarliestAssignment(t *testing.T) {
	_, lg := fanDAG(t)
	l := lg.EarliestAssignment()
	if !lg.ValidAssignment(l) {
		t.Fatalf("EarliestAssignment %v invalid", l)
	}
	for m := 0; m < lg.NumMessages(); m++ {
		if l[m] != lg.Depth(MsgID(m)) {
			t.Errorf("EarliestAssignment[%d] = %d, want depth %d", m, l[m], lg.Depth(MsgID(m)))
		}
	}
}

func TestEnumerateAssignmentsCompleteAndValid(t *testing.T) {
	_, lg := fanDAG(t)
	const maxRounds = 3
	seen := make(map[string]bool)
	lg.EnumerateAssignments(maxRounds, func(l []int) bool {
		if !lg.ValidAssignment(l) {
			t.Fatalf("enumerated invalid assignment %v", l)
		}
		key := ""
		for _, r := range l {
			key += string(rune('0' + r))
		}
		if seen[key] {
			t.Fatalf("assignment %v enumerated twice", l)
		}
		seen[key] = true
		return true
	})
	// Brute-force count: all l in {0..2}^3 that are valid and use a
	// gapless prefix of rounds.
	want := 0
	for a := 0; a < maxRounds; a++ {
		for b := 0; b < maxRounds; b++ {
			for c := 0; c < maxRounds; c++ {
				l := []int{a, b, c}
				if !lg.ValidAssignment(l) {
					continue
				}
				used := map[int]bool{a: true, b: true, c: true}
				max := a
				if b > max {
					max = b
				}
				if c > max {
					max = c
				}
				gapless := true
				for r := 0; r <= max; r++ {
					if !used[r] {
						gapless = false
					}
				}
				if gapless {
					want++
				}
			}
		}
	}
	if len(seen) != want {
		t.Errorf("enumerated %d assignments, brute force %d", len(seen), want)
	}
}

func TestEnumerateAssignmentsEarlyStop(t *testing.T) {
	_, lg := fanDAG(t)
	calls := 0
	lg.EnumerateAssignments(3, func(l []int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("enumeration continued after fn returned false: %d calls", calls)
	}
}

func TestEnumerateAssignmentsRespectsMaxRounds(t *testing.T) {
	_, lg := fanDAG(t)
	lg.EnumerateAssignments(lg.MinRounds()-1, func(l []int) bool {
		t.Fatalf("enumeration produced %v below MinRounds", l)
		return false
	})
}

func TestLineGraphEmptyApplication(t *testing.T) {
	g := New()
	g.MustAddTask("only", "n0", 10)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	lg, err := NewLineGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if lg.MinRounds() != 0 {
		t.Errorf("MinRounds of message-free app = %d, want 0", lg.MinRounds())
	}
	called := false
	lg.EnumerateAssignments(3, func(l []int) bool {
		called = true
		if len(l) != 0 {
			t.Errorf("expected empty assignment, got %v", l)
		}
		return true
	})
	if !called {
		t.Error("enumeration skipped the empty assignment")
	}
}

func TestLineGraphChain(t *testing.T) {
	// A chain a->b->c->d has three messages in a path; every admissible
	// assignment is strictly increasing.
	g := New()
	a := g.MustAddTask("a", "n0", 10)
	b := g.MustAddTask("b", "n1", 10)
	c := g.MustAddTask("c", "n2", 10)
	d := g.MustAddTask("d", "n3", 10)
	g.MustConnect(a, b, 4)
	g.MustConnect(b, c, 4)
	g.MustConnect(c, d, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	lg, err := NewLineGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if lg.MinRounds() != 3 {
		t.Fatalf("MinRounds = %d, want 3", lg.MinRounds())
	}
	count := 0
	lg.EnumerateAssignments(3, func(l []int) bool {
		count++
		for i := 0; i+1 < len(l); i++ {
			if l[i] >= l[i+1] {
				t.Errorf("chain assignment %v not strictly increasing", l)
			}
		}
		return true
	})
	if count != 1 {
		t.Errorf("chain with 3 rounds admits %d assignments, want exactly 1", count)
	}
}

// TestEnumerateBatchesMatchesEnumerateAssignments checks that batching
// preserves the sequential enumeration exactly: same assignments, same
// order, partitioned into full batches plus one optional short tail.
func TestEnumerateBatchesMatchesEnumerateAssignments(t *testing.T) {
	_, lg := fanDAG(t)
	const maxRounds = 3
	var seq [][]int
	lg.EnumerateAssignments(maxRounds, func(l []int) bool {
		seq = append(seq, append([]int(nil), l...))
		return true
	})
	if len(seq) < 2 {
		t.Fatalf("degenerate corpus: %d assignments", len(seq))
	}
	for _, batchSize := range []int{1, 2, 3, len(seq), len(seq) + 7, 0} {
		var got [][]int
		var sizes []int
		lg.EnumerateBatches(maxRounds, batchSize, func(batch [][]int) bool {
			sizes = append(sizes, len(batch))
			got = append(got, batch...)
			return true
		})
		if len(got) != len(seq) {
			t.Fatalf("batchSize %d: %d assignments, want %d", batchSize, len(got), len(seq))
		}
		for i := range seq {
			if len(got[i]) != len(seq[i]) {
				t.Fatalf("batchSize %d: assignment %d length mismatch", batchSize, i)
			}
			for j := range seq[i] {
				if got[i][j] != seq[i][j] {
					t.Fatalf("batchSize %d: assignment %d = %v, want %v", batchSize, i, got[i], seq[i])
				}
			}
		}
		want := batchSize
		if want < 1 {
			want = 1
		}
		for k, s := range sizes {
			if k < len(sizes)-1 && s != want {
				t.Errorf("batchSize %d: interior batch %d has %d entries", batchSize, k, s)
			}
			if s == 0 || s > want {
				t.Errorf("batchSize %d: batch %d has %d entries", batchSize, k, s)
			}
		}
	}
}

// TestEnumerateBatchesEarlyStop confirms a false return cancels the
// enumeration without a trailing flush.
func TestEnumerateBatchesEarlyStop(t *testing.T) {
	_, lg := fanDAG(t)
	calls := 0
	lg.EnumerateBatches(3, 2, func(batch [][]int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("enumeration continued after cancel: %d calls", calls)
	}
}

// TestEnumerateBatchesCopiesAreStable: retained batches must not alias
// the enumerator's reused buffer.
func TestEnumerateBatchesCopiesAreStable(t *testing.T) {
	_, lg := fanDAG(t)
	var all [][]int
	lg.EnumerateBatches(3, 4, func(batch [][]int) bool {
		all = append(all, batch...)
		return true
	})
	for i, l := range all {
		if !lg.ValidAssignment(l) {
			t.Errorf("retained assignment %d = %v is invalid (buffer aliasing?)", i, l)
		}
	}
	// All retained assignments must be distinct.
	seen := make(map[string]bool)
	for _, l := range all {
		key := ""
		for _, r := range l {
			key += string(rune('0' + r))
		}
		if seen[key] {
			t.Fatalf("duplicate retained assignment %v — enumerator buffer aliased", l)
		}
		seen[key] = true
	}
}
