package dag

import "fmt"

// LineGraph is L(G_A) restricted to E*: its vertices are the
// unique-source messages and there is an edge m1 -> m2 whenever some
// consumer of m1 is the source of m2 — message m2's payload can depend on
// m1's, so m1 must travel in an earlier communication round. A
// topological partial order of this graph (paper eq. 2) is exactly an
// admissible assignment l of messages to rounds.
type LineGraph struct {
	n     int
	succ  [][]MsgID
	pred  [][]MsgID
	depth []int // longest chain of predecessors, 0-based
}

// NewLineGraph builds the line graph of g over E*. The application graph
// must be acyclic (call g.Validate first); the line graph of a DAG is a
// DAG.
func NewLineGraph(g *Graph) (*LineGraph, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, fmt.Errorf("dag: line graph of cyclic application: %w", err)
	}
	n := g.NumMessages()
	lg := &LineGraph{
		n:     n,
		succ:  make([][]MsgID, n),
		pred:  make([][]MsgID, n),
		depth: make([]int, n),
	}
	for _, m := range g.Messages() {
		for _, dst := range m.Dests {
			if next, ok := g.MessageOf(dst); ok {
				lg.succ[m.ID] = append(lg.succ[m.ID], next.ID)
				lg.pred[next.ID] = append(lg.pred[next.ID], m.ID)
			}
		}
	}
	// Depths via topological order of the application guarantee acyclic
	// processing: messages inherit order from their source tasks.
	order, _ := g.TopoOrder()
	for _, tid := range order {
		m, ok := g.MessageOf(tid)
		if !ok {
			continue
		}
		d := 0
		for _, p := range lg.pred[m.ID] {
			if lg.depth[p]+1 > d {
				d = lg.depth[p] + 1
			}
		}
		lg.depth[m.ID] = d
	}
	return lg, nil
}

// NumMessages returns the number of vertices (|E*|).
func (lg *LineGraph) NumMessages() int { return lg.n }

// Succs returns the direct successors of m (copy).
func (lg *LineGraph) Succs(m MsgID) []MsgID { return append([]MsgID(nil), lg.succ[m]...) }

// Preds returns the direct predecessors of m (copy).
func (lg *LineGraph) Preds(m MsgID) []MsgID { return append([]MsgID(nil), lg.pred[m]...) }

// Depth returns the longest predecessor chain length of m; messages with
// no predecessors have depth 0. Depth is a lower bound on the round index
// a message can be assigned to.
func (lg *LineGraph) Depth(m MsgID) int { return lg.depth[m] }

// MinRounds returns the minimum number of communication rounds any
// admissible assignment needs: one more than the maximum depth (or zero
// for message-free applications).
func (lg *LineGraph) MinRounds() int {
	if lg.n == 0 {
		return 0
	}
	max := 0
	for _, d := range lg.depth {
		if d > max {
			max = d
		}
	}
	return max + 1
}

// ValidAssignment reports whether l (indexed by MsgID) is a topological
// partial order of the line graph: every edge m1 -> m2 has
// l[m1] < l[m2], and every entry is non-negative.
func (lg *LineGraph) ValidAssignment(l []int) bool {
	if len(l) != lg.n {
		return false
	}
	for _, r := range l {
		if r < 0 {
			return false
		}
	}
	for m := 0; m < lg.n; m++ {
		for _, s := range lg.succ[m] {
			if l[m] >= l[s] {
				return false
			}
		}
	}
	return true
}

// EnumerateAssignments calls fn with every admissible assignment of
// messages to rounds 0..maxRounds-1 that uses a prefix of the round
// indices with no empty round in between (canonical form: the set of used
// round indices is {0, 1, ..., r-1} for some r). Assignments are passed
// in a reused buffer; fn must copy if it retains the slice. Enumeration
// stops early when fn returns false. The total number of assignments
// grows quickly with |E*| and maxRounds; callers bound maxRounds.
func (lg *LineGraph) EnumerateAssignments(maxRounds int, fn func(l []int) bool) {
	if lg.n == 0 {
		fn(nil)
		return
	}
	if maxRounds < lg.MinRounds() {
		return
	}
	// Assign messages in an order compatible with line-graph precedence
	// (by depth, then ID) so each message's predecessors are already
	// placed when it is considered.
	order := make([]MsgID, lg.n)
	for i := range order {
		order[i] = MsgID(i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && lg.less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	l := make([]int, lg.n)
	counts := make([]int, maxRounds) // messages per round, for surjectivity
	stopped := false
	for rounds := lg.MinRounds(); rounds <= maxRounds && !stopped; rounds++ {
		var rec func(idx, empty int)
		rec = func(idx, empty int) {
			if stopped {
				return
			}
			if empty > len(order)-idx {
				return // not enough messages left to fill every round
			}
			if idx == len(order) {
				if !fn(l) {
					stopped = true
				}
				return
			}
			m := order[idx]
			lo := 0
			for _, p := range lg.pred[m] {
				if l[p]+1 > lo {
					lo = l[p] + 1
				}
			}
			for r := lo; r < rounds; r++ {
				l[m] = r
				counts[r]++
				e := empty
				if counts[r] == 1 {
					e--
				}
				rec(idx+1, e)
				counts[r]--
				if stopped {
					return
				}
			}
		}
		rec(0, rounds)
	}
}

// EnumerateBatches groups the assignments of EnumerateAssignments into
// batches of up to batchSize freshly allocated copies, in the same
// deterministic order, and passes each batch to fn — the producer side of
// a parallel outer search, where per-batch channel sends amortize
// synchronization. The final batch may be short. Enumeration stops (and
// no further batches are emitted) when fn returns false, so a consumer
// can cancel mid-enumeration. Batches are safe to retain.
func (lg *LineGraph) EnumerateBatches(maxRounds, batchSize int, fn func(batch [][]int) bool) {
	if batchSize < 1 {
		batchSize = 1
	}
	batch := make([][]int, 0, batchSize)
	stopped := false
	lg.EnumerateAssignments(maxRounds, func(l []int) bool {
		batch = append(batch, append([]int(nil), l...))
		if len(batch) < batchSize {
			return true
		}
		if !fn(batch) {
			stopped = true
			return false
		}
		batch = make([][]int, 0, batchSize)
		return true
	})
	if !stopped && len(batch) > 0 {
		fn(batch)
	}
}

func (lg *LineGraph) less(a, b MsgID) bool {
	if lg.depth[a] != lg.depth[b] {
		return lg.depth[a] < lg.depth[b]
	}
	return a < b
}

// EarliestAssignment returns the canonical ASAP assignment l[m] =
// Depth(m), which uses MinRounds rounds and is always admissible.
func (lg *LineGraph) EarliestAssignment() []int {
	l := make([]int, lg.n)
	copy(l, lg.depth)
	return l
}
