package dag

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g, _, _, _ := pipeline3(t)
	var b strings.Builder
	if err := g.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph application",
		"sense",
		"compute",
		"act",
		"8B", // message width label
		"4B",
		"cluster_0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTOrderEdgesDashed(t *testing.T) {
	g := New()
	a := g.MustAddTask("a", "n0", 10)
	b := g.MustAddTask("b", "n0", 10)
	g.MustConnectOrder(a, b)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "style=dashed") {
		t.Error("order edge not rendered dashed")
	}
}
