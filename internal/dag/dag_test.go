package dag

import (
	"errors"
	"testing"
)

// pipeline3 builds sense -> compute -> act on three nodes with an 8-byte
// and a 4-byte message.
func pipeline3(t testing.TB) (*Graph, TaskID, TaskID, TaskID) {
	t.Helper()
	g := New()
	sense := g.MustAddTask("sense", "n0", 100)
	compute := g.MustAddTask("compute", "n1", 500)
	act := g.MustAddTask("act", "n2", 50)
	g.MustConnect(sense, compute, 8)
	g.MustConnect(compute, act, 4)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g, sense, compute, act
}

func TestAddTaskValidation(t *testing.T) {
	g := New()
	if _, err := g.AddTask("", "n0", 10); !errors.Is(err, ErrBadLabel) {
		t.Errorf("empty name accepted: %v", err)
	}
	if _, err := g.AddTask("a", "", 10); !errors.Is(err, ErrBadLabel) {
		t.Errorf("empty node accepted: %v", err)
	}
	if _, err := g.AddTask("a", "n0", 0); !errors.Is(err, ErrBadLabel) {
		t.Errorf("zero WCET accepted: %v", err)
	}
	if _, err := g.AddTask("a", "n0", 10); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	if _, err := g.AddTask("a", "n1", 10); !errors.Is(err, ErrDuplicateTask) {
		t.Errorf("duplicate name accepted: %v", err)
	}
}

func TestConnectValidation(t *testing.T) {
	g := New()
	a := g.MustAddTask("a", "n0", 10)
	b := g.MustAddTask("b", "n1", 10)
	if err := g.Connect(a, a, 4); !errors.Is(err, ErrCycle) {
		t.Errorf("self-loop accepted: %v", err)
	}
	if err := g.Connect(a, TaskID(99), 4); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("unknown destination accepted: %v", err)
	}
	if err := g.Connect(a, b, 0); !errors.Is(err, ErrBadLabel) {
		t.Errorf("zero width accepted: %v", err)
	}
	if err := g.Connect(a, b, 4); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	// Idempotent reconnect.
	if err := g.Connect(a, b, 4); err != nil {
		t.Fatalf("reconnect rejected: %v", err)
	}
	m, _ := g.MessageOf(a)
	if len(m.Dests) != 1 {
		t.Errorf("reconnect duplicated destination: %v", m.Dests)
	}
}

func TestUniqueSourceMessages(t *testing.T) {
	// Two edges out of the same source share one message whose width is
	// the max requested (the flood carries the widest payload).
	g := New()
	src := g.MustAddTask("src", "n0", 10)
	d1 := g.MustAddTask("d1", "n1", 10)
	d2 := g.MustAddTask("d2", "n2", 10)
	g.MustConnect(src, d1, 4)
	g.MustConnect(src, d2, 12)
	if g.NumMessages() != 1 {
		t.Fatalf("NumMessages = %d, want 1 (E* restriction)", g.NumMessages())
	}
	m, ok := g.MessageOf(src)
	if !ok {
		t.Fatal("MessageOf(src) missing")
	}
	if m.Width != 12 {
		t.Errorf("message width = %d, want max(4,12) = 12", m.Width)
	}
	if len(m.Dests) != 2 {
		t.Errorf("message dests = %v, want two", m.Dests)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g := New()
	a := g.MustAddTask("a", "n0", 10)
	b := g.MustAddTask("b", "n1", 10)
	c := g.MustAddTask("c", "n2", 10)
	g.MustConnect(a, b, 4)
	g.MustConnect(b, c, 4)
	g.MustConnect(c, a, 4)
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("Validate on cyclic graph = %v, want ErrCycle", err)
	}
}

func TestValidateEnforcesPlacementOrder(t *testing.T) {
	// Two unrelated tasks on the same node violate paper eq. (1).
	g := New()
	g.MustAddTask("a", "shared", 10)
	g.MustAddTask("b", "shared", 10)
	if err := g.Validate(); !errors.Is(err, ErrPlacement) {
		t.Errorf("Validate = %v, want ErrPlacement", err)
	}
	// Ordered same-node tasks are fine.
	g2 := New()
	a := g2.MustAddTask("a", "shared", 10)
	b := g2.MustAddTask("b", "shared", 10)
	g2.MustConnect(a, b, 4)
	if err := g2.Validate(); err != nil {
		t.Errorf("Validate on ordered same-node tasks: %v", err)
	}
	// Transitive ordering through a third node also satisfies eq. (1).
	g3 := New()
	a3 := g3.MustAddTask("a", "shared", 10)
	mid := g3.MustAddTask("mid", "other", 10)
	b3 := g3.MustAddTask("b", "shared", 10)
	g3.MustConnect(a3, mid, 4)
	g3.MustConnect(mid, b3, 4)
	if err := g3.Validate(); err != nil {
		t.Errorf("Validate on transitively ordered tasks: %v", err)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g, _, _, _ := pipeline3(t)
	o1, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := g.TopoOrder()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("TopoOrder not deterministic: %v vs %v", o1, o2)
		}
	}
	pos := make(map[TaskID]int)
	for i, id := range o1 {
		pos[id] = i
	}
	for _, tk := range g.Tasks() {
		for _, s := range g.Succs(tk.ID) {
			if pos[tk.ID] >= pos[s] {
				t.Errorf("topo order violates edge %d -> %d", tk.ID, s)
			}
		}
	}
}

func TestReaches(t *testing.T) {
	g, sense, compute, act := pipeline3(t)
	if !g.Reaches(sense, act) {
		t.Error("sense should reach act")
	}
	if g.Reaches(act, sense) {
		t.Error("act must not reach sense")
	}
	if g.Reaches(compute, compute) {
		t.Error("Reaches must be irreflexive")
	}
}

func TestMsgAncestors(t *testing.T) {
	g, sense, compute, act := pipeline3(t)
	mSense, _ := g.MessageOf(sense)
	mCompute, _ := g.MessageOf(compute)
	anc := g.MsgAncestors(act)
	if len(anc) != 2 || anc[0] != mSense.ID || anc[1] != mCompute.ID {
		t.Errorf("MsgAncestors(act) = %v, want [%d %d]", anc, mSense.ID, mCompute.ID)
	}
	if got := g.MsgAncestors(sense); len(got) != 0 {
		t.Errorf("MsgAncestors(sense) = %v, want empty", got)
	}
	if got := g.MsgAncestors(compute); len(got) != 1 || got[0] != mSense.ID {
		t.Errorf("MsgAncestors(compute) = %v, want [%d]", got, mSense.ID)
	}
}

func TestSourcesSinksNodes(t *testing.T) {
	g, sense, _, act := pipeline3(t)
	if s := g.Sources(); len(s) != 1 || s[0] != sense {
		t.Errorf("Sources = %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != act {
		t.Errorf("Sinks = %v", s)
	}
	nodes := g.Nodes()
	if len(nodes) != 3 || nodes[0] != "n0" || nodes[2] != "n2" {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestCriticalPathWCET(t *testing.T) {
	g, _, _, _ := pipeline3(t)
	if got := g.CriticalPathWCET(); got != 650 {
		t.Errorf("CriticalPathWCET = %d, want 650", got)
	}
	// Parallel branches: the longer branch dominates.
	g2 := New()
	a := g2.MustAddTask("a", "n0", 100)
	b := g2.MustAddTask("b", "n1", 900)
	c := g2.MustAddTask("c", "n2", 100)
	d := g2.MustAddTask("d", "n3", 100)
	g2.MustConnect(a, b, 4)
	g2.MustConnect(a, c, 4)
	g2.MustConnect(b, d, 4)
	g2.MustConnect(c, d, 4)
	if got := g2.CriticalPathWCET(); got != 1100 {
		t.Errorf("diamond CriticalPathWCET = %d, want 1100", got)
	}
}

func TestConnectOrderSemantics(t *testing.T) {
	g := New()
	a := g.MustAddTask("a", "shared", 10)
	b := g.MustAddTask("b", "shared", 10)
	if err := g.ConnectOrder(a, b); err != nil {
		t.Fatal(err)
	}
	// Order edges satisfy eq. (1): same-node tasks are now ordered.
	if err := g.Validate(); err != nil {
		t.Fatalf("order edge did not satisfy placement rule: %v", err)
	}
	if !g.OrderOnly(a, b) {
		t.Error("edge not marked order-only")
	}
	if !g.Reaches(a, b) {
		t.Error("order edge missing from reachability")
	}
	// No message created.
	if g.NumMessages() != 0 {
		t.Errorf("order edge created %d messages", g.NumMessages())
	}
	if g.ConsumesMessage(a, b) {
		t.Error("order edge reported as message consumption")
	}
	// Self-loop and unknown task rejected.
	if err := g.ConnectOrder(a, a); err == nil {
		t.Error("order self-loop accepted")
	}
	if err := g.ConnectOrder(a, TaskID(9)); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestConnectUpgradesOrderEdge(t *testing.T) {
	g := New()
	a := g.MustAddTask("a", "n0", 10)
	b := g.MustAddTask("b", "n1", 10)
	g.MustConnectOrder(a, b)
	if err := g.Connect(a, b, 4); err != nil {
		t.Fatal(err)
	}
	if g.OrderOnly(a, b) {
		t.Error("upgraded edge still order-only")
	}
	if !g.ConsumesMessage(a, b) {
		t.Error("upgraded edge has no message")
	}
	// No duplicate dependency entries.
	if got := len(g.Succs(a)); got != 1 {
		t.Errorf("succ count = %d, want 1", got)
	}
	if got := len(g.Preds(b)); got != 1 {
		t.Errorf("pred count = %d, want 1", got)
	}
}

func TestMsgAncestorsStopAtOrderEdges(t *testing.T) {
	// q --msg--> p --order--> t: t must not inherit q's message.
	g := New()
	q := g.MustAddTask("q", "n0", 10)
	p := g.MustAddTask("p", "n1", 10)
	tt := g.MustAddTask("t", "n2", 10)
	g.MustConnect(q, p, 4)
	g.MustConnectOrder(p, tt)
	if anc := g.MsgAncestors(tt); len(anc) != 0 {
		t.Errorf("order edge leaked message ancestors: %v", anc)
	}
	// p itself still depends on q's message.
	if anc := g.MsgAncestors(p); len(anc) != 1 {
		t.Errorf("p ancestors = %v, want one", anc)
	}
}

func TestMergeApplications(t *testing.T) {
	g1, _, _, _ := pipeline3(t)
	g2 := New()
	a := g2.MustAddTask("mon", "m0", 100)
	b := g2.MustAddTask("log", "m1", 100)
	g2.MustConnect(a, b, 2)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	merged, trans, err := Merge(map[string]*Graph{"ctl": g1, "mon": g2})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumTasks() != 5 {
		t.Errorf("merged tasks = %d, want 5", merged.NumTasks())
	}
	if merged.NumMessages() != 3 {
		t.Errorf("merged messages = %d, want 3", merged.NumMessages())
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged graph invalid: %v", err)
	}
	// Name prefixing and translation map agree.
	sense, ok := merged.TaskByName("ctl/sense")
	if !ok {
		t.Fatal("prefixed task missing")
	}
	orig, _ := g1.TaskByName("sense")
	if trans["ctl"][orig.ID] != sense.ID {
		t.Error("translation map inconsistent")
	}
	// Applications stay independent: no cross-app reachability.
	mon, _ := merged.TaskByName("mon/mon")
	if merged.Reaches(sense.ID, mon.ID) || merged.Reaches(mon.ID, sense.ID) {
		t.Error("merge created cross-application dependencies")
	}
	if _, _, err := Merge(nil); err == nil {
		t.Error("empty merge accepted")
	}
}

func TestMergeConflictingPlacementDetected(t *testing.T) {
	// Two apps placing unordered tasks on the same node: the merged
	// graph must fail eq. (1).
	g1 := New()
	g1.MustAddTask("a", "shared", 10)
	g2 := New()
	g2.MustAddTask("b", "shared", 10)
	merged, _, err := Merge(map[string]*Graph{"x": g1, "y": g2})
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); !errors.Is(err, ErrPlacement) {
		t.Errorf("Validate = %v, want ErrPlacement", err)
	}
}

func TestAccessorCopiesAreIsolated(t *testing.T) {
	g, sense, _, _ := pipeline3(t)
	msgs := g.Messages()
	if len(msgs) == 0 || len(msgs[0].Dests) == 0 {
		t.Fatal("unexpected empty messages")
	}
	msgs[0].Dests[0] = TaskID(42)
	fresh, _ := g.MessageOf(sense)
	if fresh.Dests[0] == TaskID(42) {
		t.Error("Messages() leaked internal state")
	}
}
