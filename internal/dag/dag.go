// Package dag models the networked applications NETDAG schedules: labeled
// task-dependency graphs G_A = (T, E) in which vertices are tasks with
// known WCETs placed on physical compute nodes, and edges are messages
// with known widths exchanged over the Low-Power Wireless Bus.
//
// Following the paper (§III-A), edges sharing a source task carry the
// same information — a Glossy flood delivers every message to every node
// — so the schedulable unit is the restricted set E* of messages with
// unique source tasks. The package also provides the line graph L(G_A)
// over E*, whose topological partial orders are exactly the admissible
// assignments of messages to LWB communication rounds.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// TaskID identifies a task within a Graph. IDs are dense indices assigned
// in insertion order.
type TaskID int

// MsgID identifies a unique-source message (an element of E*) within a
// Graph. IDs are dense indices assigned in order of first use of the
// source task.
type MsgID int

// Task is a vertex of the application graph: a computation with a known
// worst-case execution time pinned to a physical node (the placement map
// ρ of the paper is the Node field).
type Task struct {
	ID   TaskID
	Name string
	Node string // physical node executing the task (ρ(τ))
	WCET int64  // worst-case execution time in microseconds (τ.d)
}

// Message is an element of E*: the single logical message emitted by a
// source task, flooded to all nodes and consumed by Dests.
type Message struct {
	ID     MsgID
	Source TaskID
	Width  int      // payload width in bytes (e.w)
	Dests  []TaskID // consumer tasks, sorted by ID
}

// Graph is a mutable application task-dependency graph. Build it with
// AddTask and Connect, then call Validate before handing it to the
// scheduler. The zero value is not usable; call New.
type Graph struct {
	tasks []Task
	succ  [][]TaskID // raw dependency edges task -> task
	pred  [][]TaskID

	msgs   []Message
	msgOf  map[TaskID]MsgID // source task -> its message, if any
	byName map[string]TaskID
	// orderOnly marks precedence-only edges (ConnectOrder): they order
	// tasks in time but carry no data, so reliability does not propagate
	// across them.
	orderOnly map[[2]TaskID]bool
	validated bool
}

// New returns an empty application graph.
func New() *Graph {
	return &Graph{
		msgOf:     make(map[TaskID]MsgID),
		byName:    make(map[string]TaskID),
		orderOnly: make(map[[2]TaskID]bool),
	}
}

// Errors returned by graph construction and validation.
var (
	ErrDuplicateTask = errors.New("dag: duplicate task name")
	ErrUnknownTask   = errors.New("dag: unknown task")
	ErrCycle         = errors.New("dag: dependency cycle")
	ErrPlacement     = errors.New("dag: same-node tasks must be dependency-ordered (paper eq. 1)")
	ErrBadLabel      = errors.New("dag: invalid task or message label")
)

// AddTask adds a task and returns its ID. Names must be unique and
// non-empty; WCETs must be positive; the node name must be non-empty.
func (g *Graph) AddTask(name, node string, wcet int64) (TaskID, error) {
	if name == "" || node == "" {
		return -1, fmt.Errorf("%w: task needs a name and a node", ErrBadLabel)
	}
	if wcet <= 0 {
		return -1, fmt.Errorf("%w: task %q WCET must be positive, got %d", ErrBadLabel, name, wcet)
	}
	if _, dup := g.byName[name]; dup {
		return -1, fmt.Errorf("%w: %q", ErrDuplicateTask, name)
	}
	id := TaskID(len(g.tasks))
	g.tasks = append(g.tasks, Task{ID: id, Name: name, Node: node, WCET: wcet})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.byName[name] = id
	g.validated = false
	return id, nil
}

// MustAddTask is AddTask that panics on error, for tests and generators.
func (g *Graph) MustAddTask(name, node string, wcet int64) TaskID {
	id, err := g.AddTask(name, node, wcet)
	if err != nil {
		panic(err)
	}
	return id
}

// Connect records the dependency src -> dst carried by src's message. All
// edges out of src share one Message (the paper's E* restriction); the
// message width is the maximum width requested across Connect calls,
// since the flood must carry the widest payload any consumer needs.
// Width must be positive. Self-loops are rejected.
func (g *Graph) Connect(src, dst TaskID, width int) error {
	if !g.valid(src) || !g.valid(dst) {
		return fmt.Errorf("%w: connect %d -> %d", ErrUnknownTask, src, dst)
	}
	if src == dst {
		return fmt.Errorf("%w: self-loop on task %q", ErrCycle, g.tasks[src].Name)
	}
	if width <= 0 {
		return fmt.Errorf("%w: message width must be positive, got %d", ErrBadLabel, width)
	}
	mid, ok := g.msgOf[src]
	if !ok {
		mid = MsgID(len(g.msgs))
		g.msgs = append(g.msgs, Message{ID: mid, Source: src, Width: width})
		g.msgOf[src] = mid
	}
	m := &g.msgs[mid]
	if width > m.Width {
		m.Width = width
	}
	for _, d := range m.Dests {
		if d == dst {
			return nil // idempotent
		}
	}
	m.Dests = append(m.Dests, dst)
	sort.Slice(m.Dests, func(i, j int) bool { return m.Dests[i] < m.Dests[j] })
	// The pair may already be ordered by an order-only edge; upgrading
	// it to a message edge must not duplicate the dependency, and the
	// edge stops being order-only.
	already := false
	for _, s := range g.succ[src] {
		if s == dst {
			already = true
			break
		}
	}
	if !already {
		g.succ[src] = append(g.succ[src], dst)
		g.pred[dst] = append(g.pred[dst], src)
	}
	delete(g.orderOnly, [2]TaskID{src, dst})
	g.validated = false
	return nil
}

// MustConnect is Connect that panics on error.
func (g *Graph) MustConnect(src, dst TaskID, width int) {
	if err := g.Connect(src, dst, width); err != nil {
		panic(err)
	}
}

// ConnectOrder records a precedence-only edge src -> dst: dst must run
// strictly after src, but no data (and hence no bus message or
// reliability dependency) flows between them. Order edges participate in
// topological order, reachability and the eq. (1) placement validation —
// the multi-rate unroller uses them to serialize same-node task
// instances.
func (g *Graph) ConnectOrder(src, dst TaskID) error {
	if !g.valid(src) || !g.valid(dst) {
		return fmt.Errorf("%w: order connect %d -> %d", ErrUnknownTask, src, dst)
	}
	if src == dst {
		return fmt.Errorf("%w: order self-loop on task %q", ErrCycle, g.tasks[src].Name)
	}
	for _, s := range g.succ[src] {
		if s == dst {
			return nil // already ordered (message or order edge)
		}
	}
	g.succ[src] = append(g.succ[src], dst)
	g.pred[dst] = append(g.pred[dst], src)
	g.orderOnly[[2]TaskID{src, dst}] = true
	g.validated = false
	return nil
}

// MustConnectOrder is ConnectOrder that panics on error.
func (g *Graph) MustConnectOrder(src, dst TaskID) {
	if err := g.ConnectOrder(src, dst); err != nil {
		panic(err)
	}
}

// OrderOnly reports whether the src -> dst dependency is a pure ordering
// edge (no data).
func (g *Graph) OrderOnly(src, dst TaskID) bool {
	return g.orderOnly[[2]TaskID{src, dst}]
}

func (g *Graph) valid(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumMessages returns |E*|, the number of unique-source messages.
func (g *Graph) NumMessages() int { return len(g.msgs) }

// Task returns the task with the given ID; it panics on an invalid ID.
func (g *Graph) Task(id TaskID) Task {
	if !g.valid(id) {
		panic(fmt.Sprintf("dag: invalid task id %d", id))
	}
	return g.tasks[id]
}

// TaskByName returns the task with the given name.
func (g *Graph) TaskByName(name string) (Task, bool) {
	id, ok := g.byName[name]
	if !ok {
		return Task{}, false
	}
	return g.tasks[id], true
}

// Tasks returns all tasks in ID order. The slice is a copy.
func (g *Graph) Tasks() []Task {
	out := make([]Task, len(g.tasks))
	copy(out, g.tasks)
	return out
}

// Message returns the message with the given ID; it panics on an invalid
// ID.
func (g *Graph) Message(id MsgID) Message {
	if id < 0 || int(id) >= len(g.msgs) {
		panic(fmt.Sprintf("dag: invalid message id %d", id))
	}
	m := g.msgs[id]
	m.Dests = append([]TaskID(nil), m.Dests...)
	return m
}

// Messages returns E* in ID order. The slice and its Dests are copies.
func (g *Graph) Messages() []Message {
	out := make([]Message, len(g.msgs))
	for i := range g.msgs {
		out[i] = g.Message(MsgID(i))
	}
	return out
}

// MessageOf returns the message emitted by the given task, if any.
func (g *Graph) MessageOf(src TaskID) (Message, bool) {
	mid, ok := g.msgOf[src]
	if !ok {
		return Message{}, false
	}
	return g.Message(mid), true
}

// Succs returns the direct successor tasks of id (copy).
func (g *Graph) Succs(id TaskID) []TaskID {
	return append([]TaskID(nil), g.succ[id]...)
}

// Preds returns the direct predecessor tasks of id (copy).
func (g *Graph) Preds(id TaskID) []TaskID {
	return append([]TaskID(nil), g.pred[id]...)
}

// Validate checks the structural requirements the scheduler assumes:
// the dependency relation is acyclic, and any two tasks placed on the
// same physical node are ordered by the dependency relation (paper
// eq. 1, which sidesteps intra-node preemption).
func (g *Graph) Validate() error {
	if _, err := g.topoOrder(); err != nil {
		return err
	}
	reach := g.reachability()
	byNode := make(map[string][]TaskID)
	for _, t := range g.tasks {
		byNode[t.Node] = append(byNode[t.Node], t.ID)
	}
	for node, ids := range byNode {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if !reach[a][b] && !reach[b][a] {
					return fmt.Errorf("%w: %q and %q both on node %q",
						ErrPlacement, g.tasks[a].Name, g.tasks[b].Name, node)
				}
			}
		}
	}
	g.validated = true
	return nil
}

// topoOrder returns a topological order of the tasks or ErrCycle.
func (g *Graph) topoOrder() ([]TaskID, error) {
	indeg := make([]int, len(g.tasks))
	for _, succs := range g.succ {
		for _, s := range succs {
			indeg[s]++
		}
	}
	var queue []TaskID
	for i := range g.tasks {
		if indeg[i] == 0 {
			queue = append(queue, TaskID(i))
		}
	}
	var order []TaskID
	for len(queue) > 0 {
		// Pop the smallest ID for deterministic output.
		best := 0
		for i := range queue {
			if queue[i] < queue[best] {
				best = i
			}
		}
		v := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		order = append(order, v)
		for _, s := range g.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, ErrCycle
	}
	return order, nil
}

// TopoOrder returns a deterministic topological order of the task IDs.
// It returns an error if the graph is cyclic.
func (g *Graph) TopoOrder() ([]TaskID, error) { return g.topoOrder() }

// reachability computes the full transitive reachability matrix.
func (g *Graph) reachability() [][]bool {
	n := len(g.tasks)
	reach := make([][]bool, n)
	order, _ := g.topoOrder()
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	// Process in reverse topological order so successor sets are final.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, s := range g.succ[v] {
			reach[v][s] = true
			for j := 0; j < n; j++ {
				if reach[s][j] {
					reach[v][j] = true
				}
			}
		}
	}
	return reach
}

// Reaches reports whether src precedes dst in the dependency order
// (transitively, src != dst). It requires an acyclic graph.
func (g *Graph) Reaches(src, dst TaskID) bool {
	if _, err := g.topoOrder(); err != nil {
		panic("dag: Reaches on cyclic graph")
	}
	return g.reachability()[src][dst]
}

// ConsumesMessage reports whether dst consumes src's message over the
// bus (a message edge src -> dst exists, as opposed to a local
// precedence-only edge).
func (g *Graph) ConsumesMessage(src, dst TaskID) bool {
	mid, ok := g.msgOf[src]
	if !ok {
		return false
	}
	for _, d := range g.msgs[mid].Dests {
		if d == dst {
			return true
		}
	}
	return false
}

// MsgAncestors returns, for the given task, the set of messages on any
// data-dependency path into it — the message part of the paper's pred(τ)
// operator (the round part is added by the scheduler once messages are
// assigned to rounds). Order-only edges are not traversed: they carry no
// data, so upstream floods beyond them cannot affect this task's
// success. The result is sorted by message ID.
func (g *Graph) MsgAncestors(id TaskID) []MsgID {
	seen := make(map[TaskID]bool)
	var msgs []MsgID
	var walk func(t TaskID)
	walk = func(t TaskID) {
		for _, p := range g.pred[t] {
			if g.OrderOnly(p, t) {
				continue
			}
			if g.ConsumesMessage(p, t) {
				mid := g.msgOf[p]
				found := false
				for _, m := range msgs {
					if m == mid {
						found = true
						break
					}
				}
				if !found {
					msgs = append(msgs, mid)
				}
			}
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(id)
	sort.Slice(msgs, func(i, j int) bool { return msgs[i] < msgs[j] })
	return msgs
}

// Sources returns tasks with no predecessors, in ID order.
func (g *Graph) Sources() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Sinks returns tasks with no successors, in ID order.
func (g *Graph) Sinks() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Nodes returns the set of physical node names used by the placement, in
// sorted order.
func (g *Graph) Nodes() []string {
	set := make(map[string]bool)
	for _, t := range g.tasks {
		set[t.Node] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Merge combines several applications into one graph sharing the bus —
// the normal LWB situation, where independent applications' messages are
// multiplexed into the same rounds. Task names are prefixed with the
// application's label ("<label>/<name>") to stay unique; physical node
// names are shared verbatim, so two applications placing unordered tasks
// on the same node will fail eq. (1) validation exactly as a real
// deployment would need arbitration. The returned map translates
// (label, original ID) to the merged ID.
func Merge(apps map[string]*Graph) (*Graph, map[string]map[TaskID]TaskID, error) {
	if len(apps) == 0 {
		return nil, nil, errors.New("dag: merge of no applications")
	}
	labels := make([]string, 0, len(apps))
	for l := range apps {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := New()
	trans := make(map[string]map[TaskID]TaskID, len(apps))
	for _, label := range labels {
		g := apps[label]
		if g == nil {
			return nil, nil, fmt.Errorf("dag: nil application %q", label)
		}
		m := make(map[TaskID]TaskID, g.NumTasks())
		for _, t := range g.Tasks() {
			id, err := out.AddTask(label+"/"+t.Name, t.Node, t.WCET)
			if err != nil {
				return nil, nil, err
			}
			m[t.ID] = id
		}
		for _, t := range g.Tasks() {
			for _, s := range g.succ[t.ID] {
				if g.OrderOnly(t.ID, s) {
					if err := out.ConnectOrder(m[t.ID], m[s]); err != nil {
						return nil, nil, err
					}
					continue
				}
				msg, _ := g.MessageOf(t.ID)
				if err := out.Connect(m[t.ID], m[s], msg.Width); err != nil {
					return nil, nil, err
				}
			}
		}
		trans[label] = m
	}
	return out, trans, nil
}

// CriticalPathWCET returns the largest total WCET along any dependency
// path — a communication-free lower bound on the application makespan.
func (g *Graph) CriticalPathWCET() int64 {
	order, err := g.topoOrder()
	if err != nil {
		panic("dag: CriticalPathWCET on cyclic graph")
	}
	finish := make([]int64, len(g.tasks))
	var best int64
	for _, v := range order {
		f := int64(0)
		for _, p := range g.pred[v] {
			if finish[p] > f {
				f = finish[p]
			}
		}
		finish[v] = f + g.tasks[v].WCET
		if finish[v] > best {
			best = finish[v]
		}
	}
	return best
}
