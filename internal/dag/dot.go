package dag

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the application graph in Graphviz DOT form: tasks are
// boxes grouped by physical node, message edges are solid and labeled
// with their width, order-only edges are dashed. Handy for inspecting
// generated or unrolled applications.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph application {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box];\n")
	// Group tasks by node into clusters for readability.
	byNode := make(map[string][]Task)
	for _, t := range g.tasks {
		byNode[t.Node] = append(byNode[t.Node], t)
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for i, n := range nodes {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", i, n)
		for _, t := range byNode[n] {
			fmt.Fprintf(&b, "    t%d [label=\"%s\\n%d µs\"];\n", t.ID, escape(t.Name), t.WCET)
		}
		b.WriteString("  }\n")
	}
	for _, t := range g.tasks {
		for _, s := range g.succ[t.ID] {
			if g.OrderOnly(t.ID, s) {
				fmt.Fprintf(&b, "  t%d -> t%d [style=dashed, color=gray];\n", t.ID, s)
				continue
			}
			width := 0
			if m, ok := g.MessageOf(t.ID); ok {
				width = m.Width
			}
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"%dB\"];\n", t.ID, s, width)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
