// Package expt provides the small reporting toolkit shared by the
// experiment binaries and benchmarks: aligned plain-text tables and
// (x, y) series in the shape the paper's tables and figures report.
package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is an aligned plain-text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Add appends a row; missing cells render empty, extra cells are kept
// (the widest row wins).
func (t *Table) Add(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(format string, args ...interface{}) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	cell := func(row []string, i int) string {
		if i < len(row) {
			return row[i]
		}
		return ""
	}
	for i := 0; i < cols; i++ {
		if w := len(cell(t.headers, i)); w > width[i] {
			width[i] = w
		}
		for _, r := range t.rows {
			if w := len(cell(r, i)); w > width[i] {
				width[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell(row, i))
		}
		b.WriteString("\n")
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2) + "\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// WriteCSV emits the table as RFC-4180 CSV (header row first) for
// external plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.headers) > 0 {
		if err := cw.Write(t.headers); err != nil {
			return err
		}
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is a labeled (x, y) sequence — one line of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// MonotoneNonDecreasing reports whether Y never decreases along X order —
// the shape assertion several figures need.
func (s *Series) MonotoneNonDecreasing() bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1] {
			return false
		}
	}
	return true
}

// MonotoneNonIncreasing reports whether Y never increases.
func (s *Series) MonotoneNonIncreasing() bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1] {
			return false
		}
	}
	return true
}

// String renders the series as "label: (x, y) ..." rows.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Label)
	for i := range s.X {
		fmt.Fprintf(&b, " (%g, %g)", s.X[i], s.Y[i])
	}
	return b.String()
}
