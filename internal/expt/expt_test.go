package expt

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.Add("alpha", "1")
	tab.Add("beta-long", "22")
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns aligned: 'value' header starts at the same offset as row
	// values.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableAddf(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.Addf("%d\t%.2f", 7, 3.14159)
	out := tab.String()
	if !strings.Contains(out, "7") || !strings.Contains(out, "3.14") {
		t.Errorf("Addf row missing values:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("", "a")
	tab.Add("1", "extra")
	tab.Add()
	out := tab.String()
	if !strings.Contains(out, "extra") {
		t.Error("extra cell dropped")
	}
}

func TestWriteCSV(t *testing.T) {
	tab := NewTable("ignored", "a", "b")
	tab.Add("1", "x,y") // comma must be quoted
	tab.Add("2", `say "hi"`)
	var buf strings.Builder
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %q", out)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "makespan"
	s.Append(1, 10)
	s.Append(2, 12)
	s.Append(3, 12)
	if !s.MonotoneNonDecreasing() {
		t.Error("non-decreasing series misclassified")
	}
	if s.MonotoneNonIncreasing() {
		t.Error("increasing series claimed non-increasing")
	}
	s.Append(4, 5)
	if s.MonotoneNonDecreasing() {
		t.Error("decrease not detected")
	}
	if got := s.String(); !strings.Contains(got, "makespan:") || !strings.Contains(got, "(1, 10)") {
		t.Errorf("String = %q", got)
	}
}

func TestEmptySeriesIsMonotoneBothWays(t *testing.T) {
	var s Series
	if !s.MonotoneNonDecreasing() || !s.MonotoneNonIncreasing() {
		t.Error("empty series should be vacuously monotone")
	}
}
