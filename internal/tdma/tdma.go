// Package tdma implements a WirelessHART-style multi-hop TDMA scheduler
// — the "mature real-time design methodology" the paper's introduction
// contrasts NETDAG against. Messages are routed along shortest paths,
// link transmissions are packed into TDMA slots under a one-hop
// interference model, and per-link retransmission counts are provisioned
// to meet end-to-end soft targets.
//
// Its defining weakness — the one the paper calls out ("the primary
// shortcoming of existing techniques is a continued dependence on the
// particular network topology") — is reproduced faithfully: the route
// tables are computed against a concrete topology, and Execute can
// replay the schedule on a *different* topology to measure how mobility
// degrades it, while the Glossy/LWB stack is topology-agnostic by
// construction.
package tdma

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/network"
)

// Link is one directed hop transmission.
type Link struct {
	From, To int
}

// Transmission is a link transmission with its retransmission budget.
type Transmission struct {
	Link    Link
	Retries int // total attempts allowed (>= 1)
}

// Route is the hop sequence delivering one message to one consumer.
type Route struct {
	Msg      dag.MsgID
	Consumer dag.TaskID
	Hops     []Link
}

// Schedule is a complete TDMA schedule: per time slot, the set of
// non-interfering transmissions, plus routing metadata.
type Schedule struct {
	Slots      [][]Transmission
	Routes     []Route
	SlotUS     int64 // duration of one TDMA slot
	MakespanUS int64 // computation + communication horizon
}

// Params configures the TDMA scheduler.
type Params struct {
	SlotUS    int64   // per-slot duration (one transmission + ack)
	MaxRetry  int     // retransmission cap per hop
	TargetRel float64 // per-message delivery target used to size retries
}

// DefaultParams matches the Glossy profile's per-hop cost scale.
func DefaultParams() Params {
	return Params{SlotUS: 1000, MaxRetry: 8, TargetRel: 0.99}
}

// Build computes routes, retransmission budgets and a slot schedule for
// the application on the given topology. Node naming follows
// lwb.NewDeployment's convention: the application's sorted node names map
// to topology indices 0..n-1.
func Build(app *dag.Graph, topo *network.Topology, p Params) (*Schedule, error) {
	if app == nil || topo == nil {
		return nil, errors.New("tdma: nil application or topology")
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if p.SlotUS <= 0 || p.MaxRetry < 1 || p.TargetRel <= 0 || p.TargetRel >= 1 {
		return nil, fmt.Errorf("tdma: invalid params %+v", p)
	}
	names := app.Nodes()
	if topo.NumNodes() < len(names) {
		return nil, fmt.Errorf("tdma: topology has %d nodes, application needs %d", topo.NumNodes(), len(names))
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	s := &Schedule{SlotUS: p.SlotUS}
	// Route every (message, consumer) pair along a shortest path.
	for _, m := range app.Messages() {
		src := idx[app.Task(m.Source).Node]
		for _, c := range m.Dests {
			dst := idx[app.Task(c).Node]
			hops, err := shortestPath(topo, src, dst)
			if err != nil {
				return nil, fmt.Errorf("tdma: routing message %d to %q: %w", m.ID, app.Task(c).Name, err)
			}
			s.Routes = append(s.Routes, Route{Msg: m.ID, Consumer: c, Hops: hops})
		}
	}
	// Provision per-hop retries so each route meets the target: with
	// per-attempt PRR q, k attempts succeed with 1−(1−q)^k; demand the
	// per-hop reliability r_hop with r_hop^len >= target.
	var all []Transmission
	for _, rt := range s.Routes {
		if len(rt.Hops) == 0 {
			continue
		}
		perHop := math.Pow(p.TargetRel, 1/float64(len(rt.Hops)))
		for _, h := range rt.Hops {
			q := topo.PRR(h.From, h.To)
			k := 1
			for k < p.MaxRetry && 1-math.Pow(1-q, float64(k)) < perHop {
				k++
			}
			all = append(all, Transmission{Link: h, Retries: k})
		}
	}
	// Pack transmissions into slots: a transmission occupies `Retries`
	// consecutive slots worth of budget; two transmissions interfere if
	// they share an endpoint or their endpoints are adjacent (one-hop
	// interference). Greedy first-fit in route order preserves hop
	// precedence within each route automatically (earlier hops packed
	// first).
	type placed struct {
		tx         Transmission
		start, end int // slot interval [start, end)
	}
	var done []placed
	nextFree := 0
	for _, tx := range all {
		// Earliest start respecting (a) its route predecessor and (b)
		// interference with already-placed transmissions.
		start := 0
		for _, d := range done {
			if sameRouteEarlier(s.Routes, d.tx, tx) && d.end > start {
				start = d.end
			}
		}
		for {
			conflict := false
			for _, d := range done {
				if intervalsOverlap(start, start+tx.Retries, d.start, d.end) &&
					interferes(topo, d.tx.Link, tx.Link) {
					if d.end > start {
						start = d.end
					}
					conflict = true
					break
				}
			}
			if !conflict {
				break
			}
		}
		done = append(done, placed{tx: tx, start: start, end: start + tx.Retries})
		if start+tx.Retries > nextFree {
			nextFree = start + tx.Retries
		}
	}
	s.Slots = make([][]Transmission, nextFree)
	for _, d := range done {
		for slot := d.start; slot < d.end; slot++ {
			s.Slots[slot] = append(s.Slots[slot], d.tx)
		}
	}
	// Makespan: computation critical path plus the full communication
	// horizon (a simple serialized bound, as WirelessHART superframe
	// designs use).
	s.MakespanUS = app.CriticalPathWCET() + int64(nextFree)*p.SlotUS
	return s, nil
}

// sameRouteEarlier reports whether a precedes b on some route.
func sameRouteEarlier(routes []Route, a, b Transmission) bool {
	for _, rt := range routes {
		ia, ib := -1, -1
		for i, h := range rt.Hops {
			if h == a.Link {
				ia = i
			}
			if h == b.Link {
				ib = i
			}
		}
		if ia >= 0 && ib >= 0 && ia < ib {
			return true
		}
	}
	return false
}

func intervalsOverlap(a1, a2, b1, b2 int) bool { return a1 < b2 && b1 < a2 }

// interferes applies the one-hop interference model.
func interferes(topo *network.Topology, a, b Link) bool {
	if a == b {
		return true
	}
	nodes := map[int]bool{a.From: true, a.To: true}
	if nodes[b.From] || nodes[b.To] {
		return true
	}
	// Adjacent endpoints interfere.
	for _, x := range []int{a.From, a.To} {
		for _, y := range []int{b.From, b.To} {
			if topo.PRR(x, y) > 0 {
				return true
			}
		}
	}
	return false
}

// shortestPath returns the hop sequence of a BFS shortest path.
func shortestPath(topo *network.Topology, src, dst int) ([]Link, error) {
	if src == dst {
		return nil, nil
	}
	prev := make([]int, topo.NumNodes())
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range topo.Neighbors(v) {
			if prev[u] < 0 {
				prev[u] = v
				queue = append(queue, u)
			}
		}
	}
	if prev[dst] < 0 {
		return nil, network.ErrDisconnected
	}
	var rev []Link
	for v := dst; v != src; v = prev[v] {
		rev = append(rev, Link{From: prev[v], To: v})
	}
	hops := make([]Link, len(rev))
	for i := range rev {
		hops[i] = rev[len(rev)-1-i]
	}
	return hops, nil
}

// Execute replays the schedule over a (possibly different) topology and
// reports per-(message, consumer) delivery — the mobility experiment.
// Each hop succeeds with the CURRENT topology's PRR per attempt (zero if
// the link no longer exists); a route delivers if every hop succeeds
// within its retry budget.
func (s *Schedule) Execute(current *network.Topology, rng *rand.Rand) (map[dag.MsgID]map[dag.TaskID]bool, error) {
	if rng == nil {
		return nil, errors.New("tdma: Execute requires a non-nil rng")
	}
	retries := make(map[Link]int)
	for _, slot := range s.Slots {
		for _, tx := range slot {
			if tx.Retries > retries[tx.Link] {
				retries[tx.Link] = tx.Retries
			}
		}
	}
	out := make(map[dag.MsgID]map[dag.TaskID]bool)
	for _, rt := range s.Routes {
		ok := true
		for _, h := range rt.Hops {
			q := current.PRR(h.From, h.To)
			k := retries[h]
			if k < 1 {
				k = 1
			}
			hop := false
			for a := 0; a < k; a++ {
				if rng.Float64() < q {
					hop = true
					break
				}
			}
			if !hop {
				ok = false
				break
			}
		}
		if out[rt.Msg] == nil {
			out[rt.Msg] = make(map[dag.TaskID]bool)
		}
		out[rt.Msg][rt.Consumer] = ok
	}
	return out, nil
}

// DeliveryRate runs Execute repeatedly and returns the mean fraction of
// (message, consumer) pairs delivered per run.
func (s *Schedule) DeliveryRate(current *network.Topology, runs int, rng *rand.Rand) (float64, error) {
	if runs <= 0 {
		return 0, fmt.Errorf("tdma: runs must be positive, got %d", runs)
	}
	total, delivered := 0, 0
	for i := 0; i < runs; i++ {
		res, err := s.Execute(current, rng)
		if err != nil {
			return 0, err
		}
		for _, consumers := range res {
			for _, ok := range consumers {
				total++
				if ok {
					delivered++
				}
			}
		}
	}
	if total == 0 {
		return 1, nil
	}
	return float64(delivered) / float64(total), nil
}
