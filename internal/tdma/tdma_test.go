package tdma

import (
	"math/rand"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/network"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(0x7d3a)) }

func pipelineOnLine(t testing.TB, prr float64) (*dag.Graph, *network.Topology) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g, network.Line(3, prr)
}

func TestBuildPipeline(t *testing.T) {
	g, topo := pipelineOnLine(t, 0.9)
	s, err := Build(g, topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Two messages, each a single-hop route on the line (n0->n1, n1->n2).
	if len(s.Routes) != 2 {
		t.Fatalf("routes = %d, want 2", len(s.Routes))
	}
	for _, rt := range s.Routes {
		if len(rt.Hops) != 1 {
			t.Errorf("route for msg %d has %d hops, want 1", rt.Msg, len(rt.Hops))
		}
	}
	if len(s.Slots) == 0 || s.MakespanUS <= g.CriticalPathWCET() {
		t.Errorf("degenerate schedule: %d slots, makespan %d", len(s.Slots), s.MakespanUS)
	}
}

func TestBuildMultiHopRouting(t *testing.T) {
	// Source and consumer at opposite ends of a 4-node line: 3 hops.
	g := dag.New()
	a := g.MustAddTask("a", "n0", 100)
	b := g.MustAddTask("b", "n3", 100)
	g.MustConnect(a, b, 4)
	// Placeholder tasks claim the middle nodes so the name->index map
	// covers them.
	g.MustAddTask("relay1", "n1", 50)
	g.MustAddTask("relay2", "n2", 50)
	if err := g.Validate(); err == nil {
		// relay tasks share no edges: eq. (1) holds since they are on
		// distinct nodes; Validate should succeed.
	} else {
		t.Fatal(err)
	}
	topo := network.Line(4, 0.9)
	s, err := Build(g, topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Routes) != 1 || len(s.Routes[0].Hops) != 3 {
		t.Fatalf("expected one 3-hop route, got %+v", s.Routes)
	}
}

func TestInterferenceRespected(t *testing.T) {
	g, topo := pipelineOnLine(t, 0.9)
	s, err := Build(g, topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for si, slot := range s.Slots {
		for i := 0; i < len(slot); i++ {
			for j := i + 1; j < len(slot); j++ {
				if interferes(topo, slot[i].Link, slot[j].Link) {
					t.Errorf("slot %d holds interfering links %v and %v", si, slot[i].Link, slot[j].Link)
				}
			}
		}
	}
}

func TestRetriesScaleWithLinkQuality(t *testing.T) {
	g, good := pipelineOnLine(t, 0.95)
	_, bad := pipelineOnLine(t, 0.6)
	sGood, err := Build(g, good, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sBad, err := Build(g, bad, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(sBad.Slots) <= len(sGood.Slots) {
		t.Errorf("weaker links should need more slots: %d vs %d", len(sBad.Slots), len(sGood.Slots))
	}
}

func TestExecuteOnDesignTopologyMeetsTarget(t *testing.T) {
	g, topo := pipelineOnLine(t, 0.8)
	p := DefaultParams()
	s, err := Build(g, topo, p)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := s.DeliveryRate(topo, 4000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if rate < p.TargetRel-0.03 {
		t.Errorf("delivery rate %v below design target %v", rate, p.TargetRel)
	}
}

// TestTopologyDependence is the paper's motivational claim: a TDMA
// schedule built against one topology collapses when the topology
// changes (here: one line link degrades sharply, as a mobile node
// walking away would cause), because its routes are baked in.
func TestTopologyDependence(t *testing.T) {
	g, design := pipelineOnLine(t, 0.9)
	s, err := Build(g, design, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The n1-n2 link degrades to 5%.
	moved := network.NewTopology(3)
	if err := moved.AddLink(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := moved.AddLink(1, 2, 0.05); err != nil {
		t.Fatal(err)
	}
	// But a NEW link n0-n2 appears (the node moved closer to n0): a
	// topology-agnostic flood would exploit it; TDMA cannot.
	if err := moved.AddLink(0, 2, 0.9); err != nil {
		t.Fatal(err)
	}
	designRate, err := s.DeliveryRate(design, 3000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	movedRate, err := s.DeliveryRate(moved, 3000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if movedRate >= designRate-0.2 {
		t.Errorf("schedule should degrade sharply on the changed topology: %v vs %v", movedRate, designRate)
	}
}

func TestBuildValidation(t *testing.T) {
	g, topo := pipelineOnLine(t, 0.9)
	if _, err := Build(nil, topo, DefaultParams()); err == nil {
		t.Error("nil app accepted")
	}
	if _, err := Build(g, nil, DefaultParams()); err == nil {
		t.Error("nil topology accepted")
	}
	bad := DefaultParams()
	bad.TargetRel = 1.5
	if _, err := Build(g, topo, bad); err == nil {
		t.Error("invalid params accepted")
	}
	// Disconnected topology: routing must fail.
	disc := network.NewTopology(3)
	if _, err := Build(g, disc, DefaultParams()); err == nil {
		t.Error("disconnected topology accepted")
	}
	// Undersized topology.
	if _, err := Build(g, network.Line(2, 0.9), DefaultParams()); err == nil {
		t.Error("undersized topology accepted")
	}
}

func TestExecuteValidation(t *testing.T) {
	g, topo := pipelineOnLine(t, 0.9)
	s, err := Build(g, topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(topo, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := s.DeliveryRate(topo, 0, testRNG()); err == nil {
		t.Error("zero runs accepted")
	}
}
