// Package smtenc emits NETDAG scheduling problems as SMT-LIB 2 text —
// the encoding the paper hands to Z3. The repository's native solver
// (internal/solver + internal/core) decides these constraints directly;
// the encoder exists so the formal model is inspectable and so users
// with an external SMT solver can cross-check schedules produced here.
//
// The encoding follows §III of the paper:
//
//   - integer start variables for every task and round, plus one
//     makespan variable (ζ);
//   - integer χ variables per message slot and round beacon, bounded by
//     1..MaxNTX;
//   - precedence and non-overlap as linear constraints over starts, with
//     round durations linear in χ (eq. 3, 4, 5);
//   - the weakly-hard eq. (10) via per-flood miss/window lookup tables
//     encoded as nested ite-terms over χ (the statistic is tabulated, so
//     no ⌊·⌋/⌈·⌉ theory is needed — exactly the abstraction step the
//     paper introduces to stay inside a decidable fragment);
//   - soft constraints (eq. 6) via scaled-integer log-probability
//     tables: Σ logλ(χ(x)) >= log F, with logs scaled by 10^6 and
//     rounded conservatively (toward -inf on the λ side, toward +inf on
//     the target side), so any SMT-model satisfies the true constraint.
//   - minimization of the makespan via (minimize ...), the OptSMT
//     extension Z3 supports.
package smtenc

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
)

// logScale converts log-probabilities to integers for the soft encoding.
const logScale = 1_000_000

// Encode writes the SMT-LIB 2 encoding of the problem for a FIXED round
// assignment l (the paper's topological partial order): assignment[m] is
// the round index of message m. The outer enumeration over assignments
// is search-level in both the paper and this repository.
func Encode(w io.Writer, p *core.Problem, assignment []int) error {
	if p == nil {
		return errors.New("smtenc: nil problem")
	}
	if err := p.App.Validate(); err != nil {
		return err
	}
	msgs := p.App.Messages()
	if len(assignment) != len(msgs) {
		return fmt.Errorf("smtenc: assignment covers %d messages, app has %d", len(assignment), len(msgs))
	}
	rounds := 0
	for _, r := range assignment {
		if r < 0 {
			return fmt.Errorf("smtenc: negative round in assignment")
		}
		if r+1 > rounds {
			rounds = r + 1
		}
	}
	maxNTX := p.MaxNTX
	if maxNTX == 0 {
		maxNTX = core.DefaultMaxNTX
	}

	var b strings.Builder
	b.WriteString("; NETDAG scheduling encoding (Wardega & Li, DATE 2020)\n")
	b.WriteString("(set-logic QF_LIA)\n")

	// Declarations.
	for _, t := range p.App.Tasks() {
		fmt.Fprintf(&b, "(declare-const start_%s Int)\n", sanitize(t.Name))
	}
	for r := 0; r < rounds; r++ {
		fmt.Fprintf(&b, "(declare-const rstart_%d Int)\n", r)
		fmt.Fprintf(&b, "(declare-const chi_beacon_%d Int)\n", r)
	}
	for _, m := range msgs {
		fmt.Fprintf(&b, "(declare-const chi_msg_%d Int)\n", m.ID)
	}
	b.WriteString("(declare-const makespan Int)\n")

	// Domains.
	for _, t := range p.App.Tasks() {
		fmt.Fprintf(&b, "(assert (>= start_%s 0))\n", sanitize(t.Name))
	}
	for r := 0; r < rounds; r++ {
		fmt.Fprintf(&b, "(assert (>= rstart_%d 0))\n", r)
		fmt.Fprintf(&b, "(assert (and (>= chi_beacon_%d 1) (<= chi_beacon_%d %d)))\n", r, r, maxNTX)
	}
	for _, m := range msgs {
		fmt.Fprintf(&b, "(assert (and (>= chi_msg_%d 1) (<= chi_msg_%d %d)))\n", m.ID, m.ID, maxNTX)
	}

	// Round durations: eq. (3) as a linear term in the round's χs. With
	// duration(χ) = A + (2χ + D − 1 + BHW)(C + D·w) the χ coefficient is
	// 2(C + D·w) and the constant folds the rest.
	durTerm := func(r int) string {
		perHop := func(width int) int64 { return p.Params.C + p.Params.D*int64(width) }
		base := int64(p.Params.A) + (int64(p.Diameter)-1+p.Params.BHW)*perHop(p.Params.BeaconWidth)
		terms := []string{fmt.Sprintf("(* %d chi_beacon_%d)", 2*perHop(p.Params.BeaconWidth), r)}
		total := base
		for _, m := range msgs {
			if assignment[m.ID] != r {
				continue
			}
			total += p.Params.A + (int64(p.Diameter)-1+p.Params.BHW)*perHop(m.Width)
			terms = append(terms, fmt.Sprintf("(* %d chi_msg_%d)", 2*perHop(m.Width), m.ID))
		}
		return fmt.Sprintf("(+ %d %s)", total, strings.Join(terms, " "))
	}

	// (4a) task precedence.
	for _, t := range p.App.Tasks() {
		for _, s := range p.App.Succs(t.ID) {
			fmt.Fprintf(&b, "(assert (> start_%s (+ start_%s %d)))\n",
				sanitize(p.App.Task(s).Name), sanitize(t.Name), t.WCET)
		}
	}
	// (4b) rounds totally ordered.
	for r := 1; r < rounds; r++ {
		fmt.Fprintf(&b, "(assert (> rstart_%d (+ rstart_%d %s)))\n", r, r-1, durTerm(r-1))
	}
	// (4c) producers before the round, consumers after.
	for _, m := range msgs {
		r := assignment[m.ID]
		src := p.App.Task(m.Source)
		fmt.Fprintf(&b, "(assert (> rstart_%d (+ start_%s %d)))\n", r, sanitize(src.Name), src.WCET)
		for _, c := range m.Dests {
			fmt.Fprintf(&b, "(assert (> start_%s (+ rstart_%d %s)))\n",
				sanitize(p.App.Task(c).Name), r, durTerm(r))
		}
	}
	// (5) non-overlap between every task and every round.
	for _, t := range p.App.Tasks() {
		for r := 0; r < rounds; r++ {
			fmt.Fprintf(&b, "(assert (or (> rstart_%d (+ start_%s %d)) (> start_%s (+ rstart_%d %s))))\n",
				r, sanitize(t.Name), t.WCET, sanitize(t.Name), r, durTerm(r))
		}
	}
	// Makespan.
	for _, t := range p.App.Tasks() {
		fmt.Fprintf(&b, "(assert (>= makespan (+ start_%s %d)))\n", sanitize(t.Name), t.WCET)
	}
	for r := 0; r < rounds; r++ {
		fmt.Fprintf(&b, "(assert (>= makespan (+ rstart_%d %s)))\n", r, durTerm(r))
	}
	// Deadlines and releases.
	for id, d := range p.Deadlines {
		t := p.App.Task(id)
		fmt.Fprintf(&b, "(assert (<= (+ start_%s %d) %d))\n", sanitize(t.Name), t.WCET, d)
	}
	for id, rel := range p.ReleaseTimes {
		fmt.Fprintf(&b, "(assert (>= start_%s %d))\n", sanitize(p.App.Task(id).Name), rel)
	}

	// Real-time constraints.
	switch p.Mode {
	case core.Soft:
		if p.SoftStat == nil {
			return core.ErrNoStatistic
		}
		// Tabulate scaled logs, rounded down (conservative).
		logTab := make([]int64, maxNTX)
		for n := 1; n <= maxNTX; n++ {
			lam := p.SoftStat.SuccessProb(n)
			if lam <= 0 {
				logTab[n-1] = math.MinInt32
			} else {
				logTab[n-1] = int64(math.Floor(math.Log(lam) * logScale))
			}
		}
		for _, task := range p.App.Tasks() {
			target, ok := p.SoftCons[task.ID]
			if !ok || target <= 0 {
				continue
			}
			preds := predTerms(p.App, assignment, task.ID)
			if len(preds) == 0 {
				continue
			}
			var sum []string
			for _, pt := range preds {
				sum = append(sum, iteTable(pt, logTab))
			}
			bound := int64(math.Ceil(math.Log(target) * logScale))
			fmt.Fprintf(&b, "(assert (>= (+ %s) %d)) ; eq.6 for %s\n",
				strings.Join(sum, " "), bound, task.Name)
		}
	case core.WeaklyHard:
		if p.WHStat == nil {
			return core.ErrNoStatistic
		}
		missTab := make([]int64, maxNTX)
		winTab := make([]int64, maxNTX)
		for n := 1; n <= maxNTX; n++ {
			c := p.WHStat.MissConstraint(n)
			missTab[n-1] = int64(c.Misses)
			winTab[n-1] = int64(c.Window)
		}
		for _, task := range p.App.Tasks() {
			target, ok := p.WHCons[task.ID]
			if !ok || target.Trivial() {
				continue
			}
			preds := predTerms(p.App, assignment, task.ID)
			if len(preds) == 0 {
				continue
			}
			var missSum []string
			for _, pt := range preds {
				missSum = append(missSum, iteTable(pt, missTab))
				// eq.10 window side: every predecessor window covers the
				// requirement's.
				fmt.Fprintf(&b, "(assert (>= %s %d)) ; eq.10 window for %s\n",
					iteTable(pt, winTab), target.Window, task.Name)
			}
			fmt.Fprintf(&b, "(assert (<= (+ %s) %d)) ; eq.10 misses for %s\n",
				strings.Join(missSum, " "), target.Misses, task.Name)
		}
	default:
		return fmt.Errorf("smtenc: unknown mode %v", p.Mode)
	}

	b.WriteString("(minimize makespan)\n(check-sat)\n(get-objectives)\n(get-model)\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// predTerms returns the χ variable names of pred(τ).
func predTerms(app *dag.Graph, assignment []int, id dag.TaskID) []string {
	var out []string
	roundSeen := map[int]bool{}
	for _, m := range app.MsgAncestors(id) {
		out = append(out, fmt.Sprintf("chi_msg_%d", m))
		r := assignment[m]
		if !roundSeen[r] {
			roundSeen[r] = true
			out = append(out, fmt.Sprintf("chi_beacon_%d", r))
		}
	}
	return out
}

// iteTable encodes table lookup tab[chi-1] as nested ite over the χ
// variable.
func iteTable(chiVar string, tab []int64) string {
	expr := fmt.Sprintf("%d", tab[len(tab)-1])
	for n := len(tab) - 1; n >= 1; n-- {
		expr = fmt.Sprintf("(ite (= %s %d) %d %s)", chiVar, n, tab[n-1], expr)
	}
	return expr
}

func sanitize(name string) string {
	r := strings.NewReplacer("/", "_", "#", "_", "-", "_", " ", "_")
	return r.Replace(name)
}
