package smtenc

import (
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

func whProblem(t testing.TB) (*core.Problem, []int) {
	t.Helper()
	g, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage2")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3, MaxNTX: 6,
		Mode:   core.WeaklyHard,
		WHStat: glossy.SyntheticWH{},
		WHCons: map[dag.TaskID]wh.MissConstraint{last.ID: {Misses: 10, Window: 40}},
	}
	lg, err := dag.NewLineGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	return p, lg.EarliestAssignment()
}

func TestEncodeWeaklyHard(t *testing.T) {
	p, assign := whProblem(t)
	var b strings.Builder
	if err := Encode(&b, p, assign); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"(set-logic QF_LIA)",
		"(declare-const start_stage0 Int)",
		"(declare-const chi_msg_0 Int)",
		"(declare-const chi_beacon_0 Int)",
		"(declare-const makespan Int)",
		"eq.10 misses for stage2",
		"eq.10 window for stage2",
		"(minimize makespan)",
		"(check-sat)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encoding missing %q", want)
		}
	}
	if bal := balance(out); bal != 0 {
		t.Errorf("unbalanced parentheses: %+d", bal)
	}
}

func TestEncodeSoft(t *testing.T) {
	g, err := apps.Pipeline(2, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := g.TaskByName("stage1")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 2, MaxNTX: 4,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{last.ID: 0.9},
	}
	lg, err := dag.NewLineGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Encode(&b, p, lg.EarliestAssignment()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "eq.6 for stage1") {
		t.Error("soft constraint missing")
	}
	if !strings.Contains(out, "(ite (= chi_msg_0 1)") {
		t.Error("λ lookup table missing")
	}
	if bal := balance(out); bal != 0 {
		t.Errorf("unbalanced parentheses: %+d", bal)
	}
}

func TestEncodeValidation(t *testing.T) {
	if err := Encode(&strings.Builder{}, nil, nil); err == nil {
		t.Error("nil problem accepted")
	}
	p, _ := whProblem(t)
	if err := Encode(&strings.Builder{}, p, []int{0}); err == nil {
		t.Error("short assignment accepted")
	}
	if err := Encode(&strings.Builder{}, p, []int{-1, 0}); err == nil {
		t.Error("negative round accepted")
	}
}

// TestEncodingConsistentWithNativeSolver checks the encoder and the
// native scheduler agree on the feasibility boundary: a requirement the
// native solver rejects as unsatisfiable yields an encoding whose miss
// budget line is impossible with the tabulated statistic (every flood
// contributes at least the MaxNTX-level misses).
func TestEncodingConsistentWithNativeSolver(t *testing.T) {
	p, assign := whProblem(t)
	// Count pred floods for the constrained task (2 messages + 2
	// beacons on the ASAP assignment).
	last, _ := p.App.TaskByName("stage2")
	preds := predTerms(p.App, assign, last.ID)
	minMiss := p.WHStat.MissConstraint(p.MaxNTX).Misses * len(preds)
	// The native solver must agree: budgets below minMiss are unsat,
	// budgets at or above are sat (window permitting).
	p.WHCons[last.ID] = wh.MissConstraint{Misses: minMiss - 1, Window: 40}
	if _, err := core.Solve(p); err == nil {
		t.Errorf("native solver accepted a budget below the statistic's floor (%d)", minMiss-1)
	}
	p.WHCons[last.ID] = wh.MissConstraint{Misses: minMiss, Window: 40}
	if _, err := core.Solve(p); err != nil {
		t.Errorf("native solver rejected the floor budget %d: %v", minMiss, err)
	}
}

// balance returns the parenthesis balance ignoring comment lines.
func balance(s string) int {
	bal := 0
	for _, line := range strings.Split(s, "\n") {
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		for _, r := range line {
			switch r {
			case '(':
				bal++
			case ')':
				bal--
			}
		}
	}
	return bal
}
