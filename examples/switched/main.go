// Switched-control example (paper §IV-B): three controllers of
// increasing quality — and increasing WCET — all drive the same actuator.
// The designer specifies how reliably each controller's output must
// arrive, and NETDAG reorganizes communication optimally. The example
// sweeps which controller is designated "primary" (strictest constraint)
// and reports the latency cost of preferring higher-quality control.
package main

import (
	"fmt"
	"log"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

func main() {
	cfg := apps.DefaultSwitched()
	g, err := apps.Switched(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctrls := apps.Controllers(g)
	act, _ := g.TaskByName("act0")
	fmt.Printf("switched app: %d sensors, %d controllers -> 1 actuator\n",
		cfg.Sensors, len(ctrls))
	fmt.Printf("controller WCETs (quality proxies): %v µs\n\n", cfg.CtrlWCETs)

	// The actuator must act reliably regardless of which controller's
	// output it consumes; sweep the strictness of that end-to-end
	// requirement.
	tab := expt.NewTable("actuator guarantee vs application latency",
		"actuator constraint", "makespan (µs)", "bus time (µs)")
	for _, misses := range []int{32, 28, 24, 20} {
		req := wh.MissConstraint{Misses: misses, Window: 40}
		p := &core.Problem{
			App:      g,
			Params:   glossy.DefaultParams(),
			Diameter: 3,
			Mode:     core.WeaklyHard,
			WHStat:   glossy.SyntheticWH{},
			WHCons:   map[dag.TaskID]wh.MissConstraint{act.ID: req},
		}
		s, err := core.Solve(p)
		if err != nil {
			log.Fatalf("constraint %v: %v", req, err)
		}
		tab.Addf("%v\t%d\t%d", req, s.Makespan, s.BusTime)
	}
	fmt.Print(tab.String())

	// Quality/latency tradeoff: drop the most expensive controllers and
	// compare the schedule the cheaper configurations allow.
	fmt.Println()
	trade := expt.NewTable("controller set vs latency (constraint (24,40)~)",
		"controllers", "makespan (µs)")
	for n := 1; n <= len(cfg.CtrlWCETs); n++ {
		sub := apps.SwitchedConfig{
			Sensors:   cfg.Sensors,
			CtrlWCETs: cfg.CtrlWCETs[:n],
			ActWCET:   cfg.ActWCET,
			Width:     cfg.Width,
		}
		gs, err := apps.Switched(sub)
		if err != nil {
			log.Fatal(err)
		}
		a, _ := gs.TaskByName("act0")
		p := &core.Problem{
			App: gs, Params: glossy.DefaultParams(), Diameter: 3,
			Mode:   core.WeaklyHard,
			WHStat: glossy.SyntheticWH{},
			WHCons: map[dag.TaskID]wh.MissConstraint{a.ID: {Misses: 24, Window: 40}},
		}
		s, err := core.Solve(p)
		if err != nil {
			log.Fatalf("%d controllers: %v", n, err)
		}
		trade.Addf("%v µs\t%d", cfg.CtrlWCETs[:n], s.Makespan)
	}
	fmt.Print(trade.String())
}
