// MIMO example (paper §IV-B): schedule the A_MIMO application — six
// sensing, three control, four actuation tasks with random links — under
// weakly-hard constraints applied incrementally to the actuators, and
// watch the makespan grow as guarantees tighten (the fig. 2 mechanism).
package main

import (
	"fmt"
	"log"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/wh"
)

func main() {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		log.Fatal(err)
	}
	acts := apps.Actuators(g)
	fmt.Printf("A_MIMO: %d tasks, %d unique-source messages, %d actuators\n\n",
		g.NumTasks(), g.NumMessages(), len(acts))

	level := wh.MissConstraint{Misses: 24, Window: 40}
	tab := expt.NewTable(
		fmt.Sprintf("makespan as actuators adopt %v", level),
		"constrained actuators", "makespan (µs)", "bus time (µs)")
	for k := 0; k <= len(acts); k++ {
		cons := make(map[dag.TaskID]wh.MissConstraint)
		for _, a := range acts[:k] {
			cons[a] = level
		}
		p := &core.Problem{
			App:      g,
			Params:   glossy.DefaultParams(),
			Diameter: 4,
			Mode:     core.WeaklyHard,
			WHStat:   glossy.SyntheticWH{}, // the paper's eq. (13)
			WHCons:   cons,
		}
		s, err := core.Solve(p)
		if err != nil {
			log.Fatalf("%d constrained actuators: %v", k, err)
		}
		tab.Addf("%d\t%d\t%d", k, s.Makespan, s.BusTime)
	}
	fmt.Print(tab.String())

	// Show the guarantees the fully-constrained schedule actually
	// provides per actuator (the ⊕-folded left side of eq. 9).
	cons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range acts {
		cons[a] = level
	}
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: core.WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
	}
	s, err := core.Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	guar := expt.NewTable("per-actuator guarantees", "actuator", "requirement", "⊕ guarantee")
	for _, a := range acts {
		gc, _, err := core.SatisfiedWH(p, s, a)
		if err != nil {
			log.Fatal(err)
		}
		guar.Addf("%s\t%v\t%v", g.Task(a).Name, level, gc)
	}
	fmt.Print(guar.String())
}
