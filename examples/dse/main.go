// Design-space exploration example (paper §IV-D): profile a mobile
// deployment at several radio transmission-power settings, derive the
// eq. (15) network statistic per setting, and use NETDAG to find the
// minimum power that still meets the application's latency requirement.
package main

import (
	"fmt"
	"log"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/dse"
	"github.com/netdag/netdag/internal/expt"
)

func main() {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		log.Fatal(err)
	}
	cons := make(map[dag.TaskID]float64)
	for _, a := range apps.Actuators(g) {
		cons[a] = 0.9
	}
	cfg := dse.DefaultConfig(g, cons)
	cfg.MobileNodes = 13 // one mobile node per task

	points, err := dse.Explore(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tab := expt.NewTable("power exploration (fig. 4 workflow)",
		"Q", "worst mean fSS", "D(N)", "latency (µs)")
	for _, p := range points {
		lat := "infeasible"
		if p.Feasible {
			lat = fmt.Sprintf("%d", p.Latency)
		} else if !p.Usable {
			lat = "disconnected"
		}
		tab.Addf("%.1f\t%.3f\t%d\t%s", p.Q, p.WorstFSS, p.Diameter, lat)
	}
	fmt.Print(tab.String())

	// The designer's final query: cheapest power meeting a deadline.
	var deadline int64 = 200000 // 200 ms
	best, ok := dse.MinPowerForLatency(points, deadline)
	fmt.Println()
	if !ok {
		fmt.Printf("no setting meets a %d µs deadline\n", deadline)
		return
	}
	fmt.Printf("minimum power meeting %d µs: Q=%.1f (latency %d µs, diameter %d)\n",
		deadline, best.Q, best.Latency, best.Diameter)
}
