// Quickstart: schedule a three-stage sense → compute → actuate pipeline
// over the Low-Power Wireless Bus with a soft real-time constraint on
// the actuation task, print the timeline, and validate the schedule by
// simulation (paper §IV-A).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/validate"
)

func main() {
	// 1. Describe the application: tasks with WCETs pinned to physical
	// nodes, and the messages between them.
	app := dag.New()
	sense := app.MustAddTask("sense", "node-A", 500)      // 500 µs sensor read
	compute := app.MustAddTask("compute", "node-B", 2000) // 2 ms control law
	act := app.MustAddTask("act", "node-C", 300)          // 300 µs actuation
	app.MustConnect(sense, compute, 8)                    // 8-byte sample
	app.MustConnect(compute, act, 4)                      // 4-byte setpoint
	if err := app.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Pose the scheduling problem: Glossy hardware profile, a bound
	// on the network diameter, the network statistic λ_s, and the
	// task-level constraint F_s(act) = 0.95.
	problem := &core.Problem{
		App:      app,
		Params:   glossy.DefaultParams(),
		Diameter: 3,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{act: 0.95},
	}

	// 3. Solve: NETDAG picks message-to-round assignments, per-flood
	// retransmission counts, and start times, minimizing makespan.
	sched, err := core.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sched.String())
	guaranteed, err := core.SatisfiedSoft(problem, sched, act)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guaranteed P(act succeeds) = %.4f (target 0.95)\n\n", guaranteed)

	// 4. Validate per §IV-A: sample flood behaviour from the statistic
	// and check the empirical success rate.
	rng := rand.New(rand.NewSource(1))
	report, err := validate.SoftTask(problem, sched, act, 20000, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation over %d runs: v = %.4f, pass = %v\n",
		report.Runs, report.Statistic, report.Pass)
}
