// Multi-rate example (paper §IV-B): "designers can leverage our
// scheduler to freely configure how often each control output is
// required". A fast inner-loop actuator runs several times per
// hyperperiod while the sensing chain runs once; the unroller inserts
// the rate-transition message edges and NETDAG schedules the whole
// hyperperiod, showing how actuation rate trades against bus time and
// energy.
package main

import (
	"fmt"
	"log"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/multirate"
	"github.com/netdag/netdag/internal/wh"
)

func main() {
	base := dag.New()
	sense := base.MustAddTask("sense", "n0", 400)
	ctrl := base.MustAddTask("ctrl", "n1", 1500)
	act := base.MustAddTask("act", "n2", 200)
	base.MustConnect(sense, ctrl, 8)
	base.MustConnect(ctrl, act, 4)
	if err := base.Validate(); err != nil {
		log.Fatal(err)
	}

	energy := lwb.DefaultEnergyModel()
	tab := expt.NewTable("actuation rate vs hyperperiod cost",
		"act rate", "tasks", "messages", "makespan (µs)", "bus (µs)", "charge (µC)")
	for _, rate := range []int{1, 2, 3, 4} {
		res, err := multirate.Unroll(multirate.Spec{
			App:   base,
			Rates: map[dag.TaskID]int{act: rate, ctrl: rate},
		})
		if err != nil {
			log.Fatal(err)
		}
		cons := multirate.SpreadConstraints(res, map[dag.TaskID]wh.MissConstraint{
			act: {Misses: 12, Window: 40},
		})
		p := &core.Problem{
			App:       res.Graph,
			Params:    glossy.DefaultParams(),
			Diameter:  3,
			Mode:      core.WeaklyHard,
			WHStat:    glossy.SyntheticWH{},
			WHCons:    cons,
			GreedyChi: rate >= 3, // larger unrollings: favor speed
		}
		s, err := core.Solve(p)
		if err != nil {
			log.Fatalf("rate %d: %v", rate, err)
		}
		rep, err := energy.Evaluate(s, p.Params, p.Diameter)
		if err != nil {
			log.Fatal(err)
		}
		tab.Addf("%d\t%d\t%d\t%d\t%d\t%.0f",
			rate, res.Graph.NumTasks(), res.Graph.NumMessages(),
			s.Makespan, s.BusTime, rep.ChargeUC)
	}
	fmt.Print(tab.String())
	fmt.Println("\neach extra control/actuation instance adds rounds, bus time and charge —")
	fmt.Println("the designer picks the lowest rate whose control quality suffices (cf. fig. 3).")
}
