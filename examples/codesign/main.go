// Co-design example — the paper's §IV-C motivation made end-to-end:
// weakly-hard constraints are "a design methodology for safety-critical
// systems", so (1) measure, in the cartpole plant, the loosest (m, K)
// actuation behaviour the controller still tolerates; (2) hand exactly
// that constraint to NETDAG as the actuator's requirement; (3) read off
// the cheapest network configuration (makespan, bus time, energy) that
// provably delivers it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/netdag/netdag/internal/cartpole"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/wh"
)

func main() {
	// Step 1: plant-side tolerance analysis. For each candidate window,
	// find the largest miss budget that keeps mean balance above 90% of
	// the horizon.
	fmt.Println("step 1: probing controller tolerance (cartpole, eq. 14 faults)...")
	ctl, err := cartpole.TrainedController()
	if err != nil {
		log.Fatal(err)
	}
	params := cartpole.DefaultParams()
	rng := rand.New(rand.NewSource(2020))
	threshold := 0.9 * float64(params.MaxSteps)

	tolerance := map[int]int{} // window -> max tolerable misses
	probe := expt.NewTable("plant tolerance", "window K", "max tolerable m", "mean steps at limit")
	for _, k := range []int{20, 40} {
		best, bestSteps := 0, float64(params.MaxSteps)
		for m := 0; m < k && m <= 10; m++ {
			cell, err := cartpole.EvaluateWeaklyHard(ctl, params,
				wh.MissConstraint{Misses: m, Window: k}, 40, rng)
			if err != nil {
				log.Fatal(err)
			}
			if cell.MeanSteps < threshold {
				break
			}
			best, bestSteps = m, cell.MeanSteps
		}
		tolerance[k] = best
		probe.Addf("%d\t%d\t%.0f", k, best, bestSteps)
	}
	fmt.Print(probe.String())

	// Step 2+3: schedule the control loop under each tolerated
	// constraint and report the network cost NETDAG certifies.
	fmt.Println("\nstep 2: scheduling the control loop under the tolerated constraints...")
	energy := lwb.DefaultEnergyModel()
	out := expt.NewTable("network cost per certified plant constraint",
		"actuator constraint", "makespan (µs)", "bus (µs)", "charge (µC)")
	for _, k := range []int{20, 40} {
		req := wh.MissConstraint{Misses: tolerance[k], Window: k}
		app := dag.New()
		sense := app.MustAddTask("sense", "n0", 400)
		compute := app.MustAddTask("ctrl", "n1", 1500)
		act := app.MustAddTask("act", "n2", 200)
		app.MustConnect(sense, compute, 8)
		app.MustConnect(compute, act, 4)
		if err := app.Validate(); err != nil {
			log.Fatal(err)
		}
		p := &core.Problem{
			App:      app,
			Params:   glossy.DefaultParams(),
			Diameter: 3,
			Mode:     core.WeaklyHard,
			WHStat:   glossy.SyntheticWH{},
			WHCons:   map[dag.TaskID]wh.MissConstraint{act: req},
		}
		s, err := core.Solve(p)
		if err != nil {
			out.Addf("%v\tinfeasible\t-\t-", req)
			continue
		}
		rep, err := energy.Evaluate(s, p.Params, p.Diameter)
		if err != nil {
			log.Fatal(err)
		}
		out.Addf("%v\t%d\t%d\t%.0f", req, s.Makespan, s.BusTime, rep.ChargeUC)
	}
	fmt.Print(out.String())
	fmt.Println("\nlooser plant tolerance buys cheaper, lower-energy schedules —")
	fmt.Println("the weakly-hard paradigm carries plant-level safety margins into the network design.")
}
