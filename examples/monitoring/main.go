// Operations example: a deployed NETDAG system watched at runtime.
// A schedule designed under weakly-hard constraints runs over a lossy
// topology; each actuation task's outcome stream feeds an O(1) online
// monitor (wh.Monitor) that tracks the (m, K) requirement and reports
// remaining headroom, while wh.Infer recovers the empirical network
// statistic from the observed traces — closing the profile → schedule →
// deploy → observe loop.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/validate"
	"github.com/netdag/netdag/internal/wh"
)

func main() {
	// Design: the A_MIMO application under a (20,40)~ actuation bound.
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		log.Fatal(err)
	}
	req := wh.MissConstraint{Misses: 20, Window: 40}
	cons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range apps.Actuators(g) {
		cons[a] = req
	}
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: core.WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
	}
	s, err := core.Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed: makespan %d µs, actuator bound %v\n\n", s.Makespan, req)

	// Deploy on a deliberately weaker grid than the design assumed so
	// real misses appear in the monitors.
	topo := network.Grid(4, 4, 0.55)
	d, err := lwb.NewDeployment(g, s, topo, p.Params)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	seqs, err := d.Run(2000, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Runtime monitoring per actuator.
	tab := expt.NewTable("runtime monitors after 2000 executions",
		"actuator", "hit rate", "violations", "headroom (misses)")
	for _, a := range apps.Actuators(g) {
		mon, err := wh.NewMissMonitor(req)
		if err != nil {
			log.Fatal(err)
		}
		mon.PushSeq(seqs[a])
		tab.Addf("%s\t%.4f\t%d\t%d",
			g.Task(a).Name, seqs[a].HitRate(), mon.Violations(), mon.HeadroomHits())
	}
	fmt.Print(tab.String())

	// Formal end-to-end check (hypothesis tests / window audits).
	reports, err := validate.Deployed(p, d, 2000, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	dep := expt.NewTable("deployed validation", "actuator", "worst window misses", "budget", "pass")
	for _, r := range reports {
		dep.Addf("%s\t%d\t%d\t%v", r.Name, r.WorstMisses, r.WHTarget.Misses, r.Pass)
	}
	fmt.Print(dep.String())

	// Infer the empirical per-task constraint from the observed traces —
	// what a designer would feed back into the next scheduling round.
	fmt.Println()
	inf := expt.NewTable("inferred empirical constraints (window 40)", "actuator", "observed bound")
	for _, a := range apps.Actuators(g) {
		got := wh.Infer(seqs[a], []int{40})[0]
		inf.Addf("%s\t%v", g.Task(a).Name, got)
	}
	fmt.Print(inf.String())
}
