// Cartpole example (paper §IV-C): train the neural-network controller,
// then inject weakly-hard (m, K) actuation faults — on a miss, the plant
// holds the previous control output (eq. 14) — and measure how balance
// performance degrades with the miss budget and recovers with the window
// size (the fig. 3 trends).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/netdag/netdag/internal/cartpole"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/wh"
)

func main() {
	fmt.Println("training the NN controller (cross-entropy method)...")
	ctl, err := cartpole.TrainedController()
	if err != nil {
		log.Fatal(err)
	}
	params := cartpole.DefaultParams()
	rng := rand.New(rand.NewSource(42))

	// Fault-free baseline.
	env := cartpole.New(params)
	total := 0
	const eps = 20
	for e := 0; e < eps; e++ {
		steps, err := cartpole.RunEpisode(env, ctl, rng)
		if err != nil {
			log.Fatal(err)
		}
		total += steps
	}
	fmt.Printf("fault-free: %.0f/%d steps on average\n\n", float64(total)/eps, params.MaxSteps)

	// The fig. 3 grid, reduced for a quick demo.
	tab := expt.NewTable("mean balanced steps under (m,K) faults",
		"window K", "m=0", "m=2", "m=4", "m=6")
	for _, k := range []int{8, 12, 16, 20} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, m := range []int{0, 2, 4, 6} {
			cell, err := cartpole.EvaluateWeaklyHard(ctl, params,
				wh.MissConstraint{Misses: m, Window: k}, 40, rng)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.0f", cell.MeanSteps))
		}
		tab.Add(row...)
	}
	fmt.Print(tab.String())
	fmt.Println("\nexpected trends: rows improve to the right as K grows relative to m;")
	fmt.Println("columns degrade downward within a fixed window as m grows.")
}
