module github.com/netdag/netdag

go 1.22
