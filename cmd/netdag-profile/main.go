// Command netdag-profile performs the profiling step the paper assumes
// the designer has done a priori: it estimates the network statistics
// λ_s(N_TX) (flood success probability, by flood simulation over a
// topology) and λ_WH(N_TX) (miss-form weakly-hard bounds, from
// Gilbert-Elliott burst-loss traces) and prints them as tables a
// scheduling spec can reference.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/network"
)

func main() {
	topoKind := flag.String("topology", "grid", "topology: line | grid | star | clique | geometric")
	nodes := flag.Int("nodes", 9, "node count (grid uses the nearest square)")
	prr := flag.Float64("prr", 0.8, "uniform link packet reception ratio (non-geometric)")
	power := flag.Float64("q", 0.5, "transmission power for geometric topologies")
	maxNTX := flag.Int("maxntx", 8, "largest N_TX to profile")
	trials := flag.Int("trials", 2000, "flood simulations per N_TX")
	window := flag.Int("window", 50, "weakly-hard analysis window")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	topo, err := buildTopology(*topoKind, *nodes, *prr, *power, rng)
	if err != nil {
		fatal(err)
	}
	diam, err := topo.Diameter()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("topology: %s, %d nodes, diameter %d, mean link PRR %.3f\n\n",
		*topoKind, topo.NumNodes(), diam, topo.MeanPRR())

	params := glossy.DefaultParams()
	soft, err := glossy.ProfileSoft(topo, 0, *maxNTX, *trials, params, rng)
	if err != nil {
		fatal(err)
	}
	st := expt.NewTable("soft statistic λ_s (flood simulation)", "N_TX", "P(flood succeeds)", "slot µs (8-byte msg)")
	for n := 1; n <= *maxNTX; n++ {
		st.Addf("%d\t%.4f\t%d", n, soft.SuccessProb(n), params.SlotDuration(n, 8, diam))
	}
	fmt.Print(st.String())
	fmt.Println()

	ch := glossy.GilbertElliott{PGB: 0.05, PBG: 0.3, PerTXGood: topo.MeanPRR(), PerTXBad: topo.MeanPRR() / 5}
	tab, err := glossy.ProfileWH(ch, *maxNTX, 200*(*window), *window, rng)
	if err != nil {
		fatal(err)
	}
	wt := expt.NewTable("weakly-hard statistic λ_WH (Gilbert-Elliott bursts)", "N_TX", "miss bound")
	for n := 1; n <= *maxNTX; n++ {
		wt.Addf("%d\t%v", n, tab.MissConstraint(n))
	}
	fmt.Print(wt.String())

	if err := glossy.CheckSoftMonotone(soft, *maxNTX); err != nil {
		fatal(err)
	}
	if err := glossy.CheckWHMonotone(tab, *maxNTX); err != nil {
		fatal(err)
	}
}

func buildTopology(kind string, nodes int, prr, q float64, rng *rand.Rand) (*network.Topology, error) {
	switch kind {
	case "line":
		return network.Line(nodes, prr), nil
	case "star":
		return network.Star(nodes, prr), nil
	case "clique":
		return network.Clique(nodes, prr), nil
	case "grid":
		side := 1
		for (side+1)*(side+1) <= nodes {
			side++
		}
		return network.Grid(side, side, prr), nil
	case "geometric":
		topo, _, err := network.RandomGeometric(nodes, q, rng)
		return topo, err
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netdag-profile:", err)
	os.Exit(1)
}
