// Command netdag-sim deploys a scheduled problem spec onto a simulated
// wireless topology and executes it repeatedly — either with the
// abstract bus executor or with clock-accurate timing (drift, Glossy
// resynchronization, guard windows) — reporting per-task empirical hit
// rates against the design targets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/spec"
	"github.com/netdag/netdag/internal/wh"
)

func main() {
	runs := flag.Int("runs", 2000, "schedule executions to simulate")
	prr := flag.Float64("prr", 0.9, "uniform link packet reception ratio (clique; ignored with -topology)")
	topoFile := flag.String("topology", "", "JSON topology file (see network.TopologyFile); default: clique over the app's nodes")
	timed := flag.Bool("timed", false, "use the clock-accurate simulator")
	drift := flag.Float64("drift", 40, "worst-case clock drift (ppm, timed mode)")
	guard := flag.Float64("guard", 500, "guard window (µs, timed mode)")
	period := flag.Int64("period", 0, "schedule period (µs, timed mode; 0 = makespan + 100 ms)")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "parallel round-assignment search workers (0 = GOMAXPROCS, 1 = sequential)")
	deadline := flag.Duration("deadline", 0, "abort the schedule search after this wall-clock budget and simulate the best schedule found so far (0 = no limit)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: netdag-sim [flags] problem.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := spec.Load(f)
	if err != nil {
		fatal(err)
	}
	p.Workers = *workers
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	s, err := core.SolveContext(ctx, p)
	if errors.Is(err, core.ErrCanceled) {
		if s == nil {
			fatal(fmt.Errorf("deadline %v expired before any schedule was found", *deadline))
		}
		fmt.Fprintf(os.Stderr, "netdag-sim: deadline %v expired; simulating best schedule found so far (not proven optimal)\n", *deadline)
		err = nil
	}
	if err != nil {
		fatal(err)
	}
	var topo *network.Topology
	if *topoFile != "" {
		tf, err := os.Open(*topoFile)
		if err != nil {
			fatal(err)
		}
		topo, err = network.ReadJSON(tf)
		tf.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		topo = network.Clique(len(p.App.Nodes()), *prr)
	}
	d, err := lwb.NewDeployment(p.App, s, topo, p.Params)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))

	taskSeqs := map[string]wh.Seq{}
	if *timed {
		per := *period
		if per == 0 {
			per = s.Makespan + 100_000
		}
		r, err := sim.NewRunner(d, sim.ClockConfig{DriftPPM: *drift, SyncJitterUS: 2, GuardUS: *guard}, per)
		if err != nil {
			fatal(err)
		}
		res, err := r.Run(*runs, rng)
		if err != nil {
			fatal(err)
		}
		for id, q := range res.TaskSeqs {
			taskSeqs[p.App.Task(id).Name] = q
		}
		fmt.Printf("timed simulation: beacon capture %.3f, desync rate %.3f\n\n",
			res.BeaconCaptureRate, res.DesyncRate)
	} else {
		res, err := d.Run(*runs, rng)
		if err != nil {
			fatal(err)
		}
		for id, q := range res {
			taskSeqs[p.App.Task(id).Name] = q
		}
	}

	tab := expt.NewTable(fmt.Sprintf("empirical hit rates over %d runs (PRR %.2f)", *runs, *prr),
		"task", "hit rate", "target")
	for _, t := range p.App.Tasks() {
		target := "-"
		switch p.Mode {
		case core.Soft:
			if v, ok := p.SoftCons[t.ID]; ok {
				target = fmt.Sprintf("%.3f", v)
			}
		case core.WeaklyHard:
			if c, ok := p.WHCons[t.ID]; ok {
				target = c.String()
			}
		}
		tab.Addf("%s\t%.4f\t%s", t.Name, taskSeqs[t.Name].HitRate(), target)
	}
	fmt.Print(tab.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netdag-sim:", err)
	os.Exit(1)
}
