// Command netdag-sim deploys a scheduled problem spec onto a simulated
// wireless topology and executes it repeatedly — either with the
// abstract bus executor or with clock-accurate timing (drift, Glossy
// resynchronization, guard windows) — reporting per-task empirical hit
// rates against the design targets.
//
// With -campaign N it instead runs a deterministic fault-injection
// campaign: N independently seeded replications of the timed simulator
// (optionally under a -faults scenario), and with -certify it checks the
// campaign's empirical traces against the spec's declared constraints,
// exiting non-zero when a constraint is violated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/netdag/netdag/internal/campaign"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/session"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/spec"
	"github.com/netdag/netdag/internal/wh"
)

func main() {
	runs := flag.Int("runs", 2000, "schedule executions to simulate (per replication with -campaign)")
	prr := flag.Float64("prr", 0.9, "uniform link packet reception ratio (clique; ignored with -topology)")
	topoFile := flag.String("topology", "", "JSON topology file (see network.TopologyFile); default: clique over the app's nodes")
	timed := flag.Bool("timed", false, "use the clock-accurate simulator")
	drift := flag.Float64("drift", 40, "worst-case clock drift (ppm, timed mode)")
	guard := flag.Float64("guard", 500, "guard window (µs, timed mode)")
	period := flag.Int64("period", 0, "schedule period (µs, timed mode; 0 = makespan + 100 ms)")
	seed := flag.Int64("seed", 1, "simulation seed (campaign master seed with -campaign)")
	workers := flag.Int("workers", 0, "parallel workers for the schedule search and campaign (0 = GOMAXPROCS, 1 = sequential)")
	portfolio := flag.Bool("portfolio", false, "race the solver portfolio for the schedule search; deterministic and exact")
	deadline := flag.Duration("deadline", 0, "abort the schedule search after this wall-clock budget and simulate the best schedule found so far (0 = no limit)")
	faultsFile := flag.String("faults", "", "JSON fault scenario (sim.Scenario); implies -timed")
	campaignN := flag.Int("campaign", 0, "run a deterministic campaign of this many seeded replications (implies -timed)")
	certify := flag.Bool("certify", false, "certify campaign traces against the spec's constraints; exit 1 on violation (requires -campaign)")
	confidence := flag.Float64("confidence", campaign.DefaultConfidence, "Wilson confidence level for soft certification")
	online := flag.Int("online", 0, "run an online scheduler session in a closed loop — fault campaigns certify the live schedule and feed link/diameter events back — until this many events are journaled")
	journalPath := flag.String("journal", "", "write the session's replayable JSONL event journal here (online mode)")
	mobility := flag.Bool("mobility", false, "drive diameter events from a random-waypoint mobility model (online mode)")
	churn := flag.String("churn", "", "name of a task that periodically leaves and rejoins the application (online mode)")
	objective := flag.String("objective", "", `schedule search objective: "makespan" (default) or "energy"; overrides the spec's objective field`)
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: netdag-sim [flags] problem.json")
		os.Exit(2)
	}
	if *certify && *campaignN <= 0 {
		fatal(errors.New("-certify requires -campaign"))
	}
	var scenario *sim.Scenario
	if *faultsFile != "" {
		sf, err := os.Open(*faultsFile)
		if err != nil {
			fatal(err)
		}
		scenario, err = sim.LoadScenario(sf)
		sf.Close()
		if err != nil {
			fatal(err)
		}
	}
	if scenario != nil || *campaignN > 0 {
		*timed = true
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fspec, err := spec.Decode(f)
	if err != nil {
		fatal(err)
	}
	if *objective != "" {
		obj, err := core.ParseObjective(*objective)
		if err != nil {
			fatal(err)
		}
		if obj == core.ObjectivePareto {
			fatal(errors.New(`simulation executes a single schedule; -objective must be "makespan" or "energy" (netdag prints pareto fronts)`))
		}
		fspec.Objective = *objective
	}
	clocksCfg := sim.ClockConfig{DriftPPM: *drift, SyncJitterUS: 2, GuardUS: *guard}

	if *online > 0 {
		// Per-iteration campaign sizing: -campaign and -runs apply if
		// given; otherwise the loop's own (much smaller) defaults, since
		// the batch default of 2000 runs per iteration would make every
		// feedback step enormous.
		set := map[string]bool{}
		flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
		loopRuns := 0
		if set["runs"] {
			loopRuns = *runs
		}
		runOnline(fspec, session.LoopConfig{
			Events:       *online,
			Seed:         *seed,
			Scenario:     scenario,
			Replications: *campaignN,
			Runs:         loopRuns,
			Workers:      *workers,
			Confidence:   *confidence,
			PRR:          *prr,
			Mobility:     *mobility,
			Churn:        *churn,
			Clocks:       clocksCfg,
			PeriodUS:     *period,
		}, *workers, *portfolio, *journalPath)
		return
	}

	p, err := spec.Build(fspec)
	if err != nil {
		fatal(err)
	}
	if p.Objective == core.ObjectivePareto {
		fatal(errors.New(`simulation executes a single schedule; re-run with -objective makespan or energy (netdag prints pareto fronts)`))
	}
	p.Workers = *workers
	p.Portfolio = *portfolio
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	s, err := core.SolveContext(ctx, p)
	if errors.Is(err, core.ErrCanceled) {
		if s == nil {
			fatal(fmt.Errorf("deadline %v expired before any schedule was found", *deadline))
		}
		fmt.Fprintf(os.Stderr, "netdag-sim: deadline %v expired; simulating best schedule found so far (not proven optimal)\n", *deadline)
		err = nil
	}
	if err != nil {
		fatal(err)
	}
	var topo *network.Topology
	if *topoFile != "" {
		tf, err := os.Open(*topoFile)
		if err != nil {
			fatal(err)
		}
		topo, err = network.ReadJSON(tf)
		tf.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		topo = network.Clique(len(p.App.Nodes()), *prr)
	}
	d, err := lwb.NewDeployment(p.App, s, topo, p.Params)
	if err != nil {
		fatal(err)
	}
	clocks := clocksCfg

	if *campaignN > 0 {
		runCampaign(p, d, campaign.Config{
			Replications: *campaignN,
			Runs:         *runs,
			Seed:         *seed,
			Workers:      *workers,
			Scenario:     scenario,
			Clocks:       clocks,
			PeriodUS:     *period,
		}, *certify, *confidence)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	taskSeqs := map[string]wh.Seq{}
	if *timed {
		per := *period
		if per == 0 {
			per = s.Makespan + 100_000
		}
		r, err := sim.NewRunner(d, clocks, per)
		if err != nil {
			fatal(err)
		}
		r.Faults = scenario
		res, err := r.Run(*runs, rng)
		if err != nil {
			fatal(err)
		}
		for id, q := range res.TaskSeqs {
			taskSeqs[p.App.Task(id).Name] = q
		}
		fmt.Printf("timed simulation: beacon capture %.3f, desync rate %.3f\n\n",
			res.BeaconCaptureRate, res.DesyncRate)
	} else {
		res, err := d.Run(*runs, rng)
		if err != nil {
			fatal(err)
		}
		for id, q := range res {
			taskSeqs[p.App.Task(id).Name] = q
		}
	}

	tab := expt.NewTable(fmt.Sprintf("empirical hit rates over %d runs (PRR %.2f)", *runs, *prr),
		"task", "hit rate", "target")
	for _, t := range p.App.Tasks() {
		target := "-"
		switch p.Mode {
		case core.Soft:
			if v, ok := p.SoftCons[t.ID]; ok {
				target = fmt.Sprintf("%.3f", v)
			}
		case core.WeaklyHard:
			if c, ok := p.WHCons[t.ID]; ok {
				target = c.String()
			}
		}
		tab.Addf("%s\t%.4f\t%s", t.Name, taskSeqs[t.Name].HitRate(), target)
	}
	fmt.Print(tab.String())
}

// runOnline runs the closed loop: a long-lived scheduler session whose
// event stream is generated by certifying the live schedule against
// fault campaigns (and, optionally, a mobility model and task churn).
// The journal is a deterministic function of the spec, the scenario and
// the seed — bit-identical across worker counts and repeat runs.
func runOnline(fspec *spec.File, cfg session.LoopConfig, workers int, portfolio bool, journalPath string) {
	s, err := session.New(context.Background(), fspec, session.Config{
		Workers:   workers,
		Portfolio: portfolio,
	})
	if err != nil {
		fatal(err)
	}
	res, err := session.RunLoop(context.Background(), s, cfg)
	if err != nil {
		s.Close()
		fatal(err)
	}
	if journalPath != "" {
		jf, err := os.Create(journalPath)
		if err != nil {
			fatal(err)
		}
		if err := s.WriteJournal(jf); err != nil {
			fatal(err)
		}
		if err := jf.Close(); err != nil {
			fatal(err)
		}
	}
	st := s.Close()
	name := "fault-free"
	if cfg.Scenario != nil && cfg.Scenario.Name != "" {
		name = cfg.Scenario.Name
	}
	fmt.Printf("online session under %q: %d events over %d iterations (seed %d)\n",
		name, res.Events, res.Iterations, cfg.Seed)
	fmt.Printf("  applied %d (warm hits %d), rejected %d, violated iterations %d\n",
		st.Applied, st.WarmHits, st.Rejected, res.ViolatedIterations)
	fmt.Printf("  fallbacks %d, mode switches %d, recoveries %d, re-solves %d\n",
		st.Fallbacks, st.ModeSwitches, st.Recoveries, st.Resolves)
	if journalPath != "" {
		fmt.Printf("  journal: %s\n", journalPath)
	}
}

// runCampaign executes the campaign and, if asked, certifies it,
// exiting 1 when any constraint is empirically violated.
func runCampaign(p *core.Problem, d *lwb.Deployment, cfg campaign.Config, certify bool, confidence float64) {
	res, err := campaign.Run(d, cfg)
	if err != nil {
		fatal(err)
	}
	name := "fault-free"
	if cfg.Scenario != nil && cfg.Scenario.Name != "" {
		name = cfg.Scenario.Name
	}
	fmt.Printf("campaign %q: %d replications × %d runs, seed %d\n", name, cfg.Replications, cfg.Runs, cfg.Seed)
	fmt.Printf("mean beacon capture %.3f, mean desync rate %.3f\n\n",
		res.MeanBeaconCapture(), res.MeanDesyncRate())

	if !certify {
		tab := expt.NewTable("pooled empirical hit rates", "task", "hit rate")
		for _, t := range p.App.Tasks() {
			hits, trials := 0, 0
			for i := range res.Reps {
				q := res.Reps[i].TaskSeqs[t.ID]
				hits += q.Hits()
				trials += len(q)
			}
			tab.Addf("%s\t%.4f", t.Name, float64(hits)/float64(trials))
		}
		fmt.Print(tab.String())
		return
	}

	rep, err := campaign.Certify(p, res, confidence)
	if err != nil {
		fatal(err)
	}
	fmt.Print(FormatReport(rep))
	if rep.Violations > 0 {
		os.Exit(1)
	}
}

// FormatReport renders a certification report as a table with a
// one-line verdict.
func FormatReport(rep *campaign.Report) string {
	tab := expt.NewTable(fmt.Sprintf("certification (%s mode, confidence %.2f)", rep.Mode, rep.Confidence),
		"task", "status", "evidence", "replay")
	for _, t := range rep.Tasks {
		var evidence string
		if t.Window > 0 {
			evidence = fmt.Sprintf("worst window %d/%d vs (%d,%d)~", t.WorstMisses, t.Window, t.Misses, t.Window)
		} else {
			evidence = fmt.Sprintf("rate %.4f in [%.4f,%.4f] vs %.4f", t.HitRate, t.WilsonLo, t.WilsonHi, t.Target)
		}
		replay := fmt.Sprintf("rep %d seed %d", t.WorstRep, t.WorstSeed)
		if t.Status == campaign.Violation && t.Window > 0 {
			replay += fmt.Sprintf(" run %d: %s", t.WorstWindowStart, t.WorstWindow)
		}
		tab.Addf("%s\t%s\t%s\t%s", t.Task, t.Status, evidence, replay)
	}
	verdict := fmt.Sprintf("\nCERTIFIED: all %d constraints hold over %d×%d runs\n",
		len(rep.Tasks), rep.Replications, rep.Runs)
	if rep.Violations > 0 {
		verdict = fmt.Sprintf("\nVIOLATED: %d of %d constraints broken (replay with the reported seeds)\n",
			rep.Violations, len(rep.Tasks))
	} else if rep.Marginals > 0 {
		verdict = fmt.Sprintf("\nMARGINAL: %d of %d constraints lack evidence at confidence %.2f\n",
			rep.Marginals, len(rep.Tasks), rep.Confidence)
	}
	return tab.String() + verdict
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netdag-sim:", err)
	os.Exit(1)
}
