// Command netdag-loadgen drives a netdag-serve instance (or cluster)
// with a deterministic, seeded stream of problem specs and reports
// latency percentiles, cache behavior and solver effort as JSON.
//
// Usage:
//
//	netdag-loadgen [-target http://localhost:8080[,http://localhost:8081,...]]
//	               [-spec base.json] [-requests 200] [-variants 25]
//	               [-concurrency 8] [-seed 1] [-deadline 0] [-label run1]
//	               [-mutate-rates] [-out bench.json]
//
// The workload is a closed-loop mix over -variants weight-mutated
// clones of the base spec (same DAG shape, WCETs and widths scaled
// deterministically from -seed), drawn with a Zipf-ish skew so a hot
// set repeats — the shape a fleet of similar deployments produces.
// With several comma-separated targets, requests round-robin across
// them, exercising cluster forwarding.
//
// -mutate-rates additionally assigns each variant a period set drawn
// from a small pool of rate maps over the base tasks. Rates are
// structural (they change the unrolled graph), so the pool splits the
// workload into a few recurring structural classes: variants sharing a
// rate set still warm-start each other, variants in different sets
// don't — the multi-rate analogue of the weight-mutation fleet.
//
// The report separates cold misses (first solve of a shape) from
// warm-started misses (X-Netdag-Warm present), so the effect of
// structural warm-starting on tail latency is directly visible.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netdag/netdag/internal/spec"
)

const baseSpec = `{
  "mode": "weakly-hard",
  "diameter": 3,
  "tasks": [
    {"name": "sense", "node": "n0", "wcet": 500},
    {"name": "ctrl",  "node": "n1", "wcet": 2000},
    {"name": "act",   "node": "n2", "wcet": 300}
  ],
  "edges": [
    {"from": "sense", "to": "ctrl", "width": 8},
    {"from": "ctrl",  "to": "act",  "width": 4}
  ],
  "whStatistic": {"type": "synthetic"},
  "whConstraints": {"act": {"misses": 10, "window": 40}}
}`

// sample is one completed request, classified for the report.
type sample struct {
	latency  time.Duration
	status   int
	cache    string // hit | miss | coalesced | remote | ""
	warm     bool   // X-Netdag-Warm present (warm-started miss)
	peer     string // X-Netdag-Peer (served by a remote owner)
	nodes    int64  // ScheduleOut.SolverNodes, 200s only
	explored int64  // ScheduleOut.Explored, 200s only
}

// latencyStats summarizes one class of samples.
type latencyStats struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50MS"`
	P90MS float64 `json:"p90MS"`
	P99MS float64 `json:"p99MS"`
	MaxMS float64 `json:"maxMS"`
}

// report is the JSON document -out receives (the BENCH_PR8.json shape).
type report struct {
	Label       string   `json:"label,omitempty"`
	Targets     []string `json:"targets"`
	Requests    int      `json:"requests"`
	Variants    int      `json:"variants"`
	Concurrency int      `json:"concurrency"`
	Seed        int64    `json:"seed"`
	RateSets    int      `json:"rateSets,omitempty"` // -mutate-rates pool size (0 = off)
	WallMS      float64  `json:"wallMS"`

	Statuses map[string]int `json:"statuses"`
	ByCache  map[string]int `json:"byCache"`
	HitRate  float64        `json:"hitRate"` // hits / completed 200s
	Remote   int            `json:"remote"`  // answers served by a peer
	ByPeer   map[string]int `json:"byPeer,omitempty"`

	All        latencyStats `json:"all"`
	Hits       latencyStats `json:"hits"`
	ColdMisses latencyStats `json:"coldMisses"` // miss, no warm hint
	WarmMisses latencyStats `json:"warmMisses"` // miss, warm-started

	SolverNodesCold int64 `json:"solverNodesCold"` // summed over cold misses
	SolverNodesWarm int64 `json:"solverNodesWarm"` // summed over warm misses
	ExploredCold    int64 `json:"exploredCold"`    // round assignments examined, cold misses
	ExploredWarm    int64 `json:"exploredWarm"`    // round assignments examined, warm misses
}

func main() {
	target := flag.String("target", "http://localhost:8080", "serve base URL(s), comma-separated; requests round-robin")
	specPath := flag.String("spec", "", "base problem spec (default: the built-in 3-task pipeline)")
	requests := flag.Int("requests", 200, "total requests to issue")
	variants := flag.Int("variants", 25, "distinct weight-mutated variants of the base spec")
	concurrency := flag.Int("concurrency", 8, "in-flight requests")
	seed := flag.Int64("seed", 1, "workload seed: variant weights and draw order")
	deadline := flag.Duration("deadline", 0, "per-request ?deadline= (0 = none)")
	mutateRates := flag.Bool("mutate-rates", false, "draw each variant's period set from a small pool of rate maps")
	label := flag.String("label", "", "free-form run label copied into the report")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	flag.Parse()

	base := []byte(baseSpec)
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			fatalf("read spec: %v", err)
		}
		base = b
	}
	var f spec.File
	if err := json.Unmarshal(base, &f); err != nil {
		fatalf("parse spec: %v", err)
	}
	targets := strings.Split(*target, ",")
	for i := range targets {
		targets[i] = strings.TrimRight(strings.TrimSpace(targets[i]), "/")
	}

	// Deterministic workload: -variants clones of the base spec with
	// scaled weights (same structural fingerprint, distinct exact
	// fingerprints), then -requests draws skewed toward low indices so
	// some variants repeat (cache hits) and some appear once (misses).
	rng := rand.New(rand.NewSource(*seed))
	var ratePool []map[string]int
	if *mutateRates {
		ratePool = rateSetPool(rng, f.Tasks)
	}
	bodies := make([][]byte, *variants)
	for i := range bodies {
		v := f // shallow copy; Tasks/Edges replaced below
		v.Tasks = make([]spec.TaskSpec, len(f.Tasks))
		for j, task := range f.Tasks {
			task.WCET = 1 + task.WCET*int64(50+rng.Intn(100))/100
			v.Tasks[j] = task
		}
		v.Edges = make([]spec.EdgeSpec, len(f.Edges))
		for j, edge := range f.Edges {
			edge.Width = 1 + edge.Width*(50+rng.Intn(100))/100
			v.Edges[j] = edge
		}
		if ratePool != nil {
			v.Rates = ratePool[rng.Intn(len(ratePool))]
		}
		b, err := json.Marshal(&v)
		if err != nil {
			fatalf("marshal variant %d: %v", i, err)
		}
		bodies[i] = b
	}
	draws := make([]int, *requests)
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(*variants-1))
	for i := range draws {
		draws[i] = int(zipf.Uint64())
	}

	query := ""
	if *deadline > 0 {
		query = "?deadline=" + deadline.String()
	}
	client := &http.Client{}
	samples := make([]sample, *requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	wallStart := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				url := targets[i%len(targets)] + "/v1/solve" + query
				samples[i] = issue(client, url, bodies[draws[i]])
			}
		}()
	}
	wg.Wait()
	wall := time.Since(wallStart)

	rep := summarize(samples, *label, targets, *variants, *concurrency, *seed, wall)
	rep.RateSets = len(ratePool)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encode report: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("write report: %v", err)
	}
	fmt.Fprintf(os.Stderr, "netdag-loadgen: %d requests in %s, report in %s\n",
		*requests, wall.Round(time.Millisecond), *out)
}

// rateSetPool builds a small pool of period sets over the base tasks.
// Pool entry 0 is always nil (the single-rate spec); each other entry
// rates one or two tasks at 2 or 4 executions per hyperperiod. The pool
// is deliberately tiny — four entries — because its point is repetition:
// rates are structural, so every entry is its own structural class and
// the Zipf draw makes classes recur across variants.
func rateSetPool(rng *rand.Rand, tasks []spec.TaskSpec) []map[string]int {
	pool := []map[string]int{nil}
	for len(pool) < 4 {
		rs := map[string]int{}
		for _, ti := range rng.Perm(len(tasks))[:1+rng.Intn(min(2, len(tasks)))] {
			rs[tasks[ti].Name] = 2 * (1 + rng.Intn(2))
		}
		pool = append(pool, rs)
	}
	return pool
}

// issue sends one solve and classifies the answer.
func issue(client *http.Client, url string, body []byte) sample {
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{latency: time.Since(start), status: -1}
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	s := sample{
		latency: time.Since(start),
		status:  resp.StatusCode,
		cache:   resp.Header.Get("X-Netdag-Cache"),
		warm:    resp.Header.Get("X-Netdag-Warm") != "",
		peer:    resp.Header.Get("X-Netdag-Peer"),
	}
	if resp.StatusCode == http.StatusOK {
		var out struct {
			SolverNodes int64 `json:"solverNodes"`
			Explored    int64 `json:"explored"`
		}
		if json.Unmarshal(payload, &out) == nil {
			s.nodes = out.SolverNodes
			s.explored = out.Explored
		}
	}
	return s
}

func summarize(samples []sample, label string, targets []string, variants, concurrency int, seed int64, wall time.Duration) report {
	rep := report{
		Label: label, Targets: targets, Requests: len(samples),
		Variants: variants, Concurrency: concurrency, Seed: seed,
		WallMS:   float64(wall.Microseconds()) / 1000,
		Statuses: map[string]int{}, ByCache: map[string]int{}, ByPeer: map[string]int{},
	}
	var all, hits, cold, warm []time.Duration
	completed := 0
	for _, s := range samples {
		rep.Statuses[fmt.Sprint(s.status)]++
		if s.cache != "" {
			rep.ByCache[s.cache]++
		}
		if s.peer != "" {
			rep.Remote++
			rep.ByPeer[s.peer]++
		}
		if s.status != http.StatusOK {
			continue
		}
		completed++
		all = append(all, s.latency)
		switch {
		case s.cache == "hit":
			hits = append(hits, s.latency)
		case s.cache == "miss" && s.warm:
			warm = append(warm, s.latency)
			rep.SolverNodesWarm += s.nodes
			rep.ExploredWarm += s.explored
		case s.cache == "miss":
			cold = append(cold, s.latency)
			rep.SolverNodesCold += s.nodes
			rep.ExploredCold += s.explored
		}
	}
	if completed > 0 {
		rep.HitRate = float64(rep.ByCache["hit"]) / float64(completed)
	}
	rep.All = percentiles(all)
	rep.Hits = percentiles(hits)
	rep.ColdMisses = percentiles(cold)
	rep.WarmMisses = percentiles(warm)
	if len(rep.ByPeer) == 0 {
		rep.ByPeer = nil
	}
	return rep
}

func percentiles(ds []time.Duration) latencyStats {
	if len(ds) == 0 {
		return latencyStats{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return ms(ds[i])
	}
	return latencyStats{
		Count: len(ds),
		P50MS: at(0.50), P90MS: at(0.90), P99MS: at(0.99),
		MaxMS: ms(ds[len(ds)-1]),
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "netdag-loadgen: "+format+"\n", args...)
	os.Exit(1)
}
