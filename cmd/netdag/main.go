// Command netdag schedules a networked application described by a JSON
// problem spec over the Low-Power Wireless Bus and prints the resulting
// timeline, per-flood retransmission parameters and guarantees.
//
// Usage:
//
//	netdag [-baseline] [-deadline 30s] [-validate runs] [-objective makespan|energy|pareto] problem.json
//	netdag -example > problem.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/smtenc"
	"github.com/netdag/netdag/internal/spec"
	"github.com/netdag/netdag/internal/validate"
)

const exampleSpec = `{
  "mode": "weakly-hard",
  "diameter": 3,
  "tasks": [
    {"name": "sense", "node": "n0", "wcet": 500},
    {"name": "ctrl",  "node": "n1", "wcet": 2000},
    {"name": "act",   "node": "n2", "wcet": 300}
  ],
  "edges": [
    {"from": "sense", "to": "ctrl", "width": 8},
    {"from": "ctrl",  "to": "act",  "width": 4}
  ],
  "whStatistic": {"type": "synthetic"},
  "whConstraints": {"act": {"misses": 10, "window": 40}}
}
`

func main() {
	baseline := flag.Bool("baseline", false, "use the global-N_TX baseline scheduler instead of NETDAG")
	runs := flag.Int("validate", 0, "also run §IV-A validation with this many simulated runs")
	seed := flag.Int64("seed", 1, "validation RNG seed")
	example := flag.Bool("example", false, "print an example problem spec and exit")
	jsonOut := flag.Bool("json", false, "emit the schedule as JSON instead of a timeline")
	smtOut := flag.Bool("smt", false, "emit the SMT-LIB 2 encoding (ASAP round assignment) and exit")
	workers := flag.Int("workers", 0, "parallel round-assignment search workers (0 = GOMAXPROCS, 1 = sequential)")
	portfolio := flag.Bool("portfolio", false, "race the solver portfolio (exact, greedy-seeded, restart orderings) per placement; deterministic and exact")
	deadline := flag.Duration("deadline", 0, "abort the search after this wall-clock budget and print the best schedule found so far (0 = no limit)")
	objective := flag.String("objective", "", `solver objective: "makespan" (default), "energy" (minimal radio charge), or "pareto" (full energy/latency front); overrides the spec's objective field`)
	flag.Parse()

	if *example {
		fmt.Print(exampleSpec)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: netdag [-baseline] [-validate runs] problem.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := spec.Load(f)
	if err != nil {
		fatal(err)
	}
	p.Workers = *workers
	p.Portfolio = *portfolio
	if *objective != "" {
		obj, err := core.ParseObjective(*objective)
		if err != nil {
			fatal(err)
		}
		p.Objective = obj
	}
	if *smtOut {
		lg, err := dag.NewLineGraph(p.App)
		if err != nil {
			fatal(err)
		}
		if err := smtenc.Encode(os.Stdout, p, lg.EarliestAssignment()); err != nil {
			fatal(err)
		}
		return
	}
	var s *core.Schedule
	var front []core.ParetoPoint
	if *baseline {
		if p.Objective == core.ObjectivePareto {
			fatal(errors.New("the global-N_TX baseline supports only the makespan objective"))
		}
		s, err = core.GlobalNTXBaseline(p)
	} else {
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		if p.Objective == core.ObjectivePareto {
			front, err = core.ParetoFrontContext(ctx, p)
			if errors.Is(err, core.ErrCanceled) {
				if len(front) == 0 {
					fatal(fmt.Errorf("deadline %v expired before any front point was found", *deadline))
				}
				fmt.Fprintf(os.Stderr, "netdag: deadline %v expired; printing the %d-point partial front (energy-optimal end may be missing)\n",
					*deadline, len(front))
				err = nil
			}
			if err == nil {
				s = front[0].Sched
			}
		} else {
			s, err = core.SolveContext(ctx, p)
			if errors.Is(err, core.ErrCanceled) {
				if s == nil {
					fatal(fmt.Errorf("deadline %v expired before any schedule was found", *deadline))
				}
				fmt.Fprintf(os.Stderr, "netdag: deadline %v expired after %d assignments; printing best schedule found so far (not proven optimal)\n",
					*deadline, s.Explored)
				err = nil
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	switch {
	case front != nil && *jsonOut:
		if err := spec.WriteFrontJSON(os.Stdout, p, front); err != nil {
			fatal(err)
		}
	case front != nil:
		tab := expt.NewTable("energy/latency Pareto front", "makespan (µs)", "energy (pC)", "rounds")
		for _, pt := range front {
			tab.Addf("%d\t%d\t%d", pt.Makespan, pt.EnergyPC, len(pt.Sched.Rounds))
		}
		fmt.Print(tab.String())
		fmt.Println()
		fmt.Print(s.String()) // the makespan-minimal point's timeline
	case *jsonOut:
		if err := spec.WriteJSON(os.Stdout, p, s); err != nil {
			fatal(err)
		}
	default:
		fmt.Print(s.String())
	}

	if *runs > 0 {
		rng := rand.New(rand.NewSource(*seed))
		switch p.Mode {
		case core.Soft:
			reports, err := validate.SoftAll(p, s, *runs, rng)
			if err != nil {
				fatal(err)
			}
			tab := expt.NewTable("§IV-A soft validation", "task", "target", "scheduled", "statistic", "pass")
			for _, r := range reports {
				tab.Addf("%s\t%.4f\t%.4f\t%.4f\t%v", r.Name, r.Target, r.Scheduled, r.Statistic, r.Pass)
			}
			fmt.Print(tab.String())
		case core.WeaklyHard:
			reports, err := validate.WHAll(p, s, *runs, rng)
			if err != nil {
				fatal(err)
			}
			tab := expt.NewTable("§IV-A weakly-hard validation", "task", "requirement", "guarantee", "worst misses", "pass")
			for _, r := range reports {
				tab.Addf("%s\t%v\t%v\t%d\t%v", r.Name, r.Requirement, r.Guarantee, r.WorstMisses, r.Pass)
			}
			fmt.Print(tab.String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netdag:", err)
	os.Exit(1)
}
