// Command netdag-dse regenerates fig. 4 of the paper: the §IV-D
// transmission-power design-space exploration — per power setting Q, the
// profiled worst-case mean filtered signal strength, the network
// diameter, and the end-to-end latency NETDAG reports for A_MIMO under
// the eq. (15) statistic.
//
// With -objective pareto the sweep computes the full energy/latency
// Pareto front of every feasible power setting instead of only its
// minimal-latency point: one row per non-dominated (makespan, charge)
// pair, with the guarantee slack each tradeoff leaves on the soft
// constraints. -csv writes the active table as a CSV figure artifact.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/netdag/netdag/internal/dse"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/figures"
)

func main() {
	deadline := flag.Int64("deadline", 0, "if positive, report the minimum power meeting this latency (µs)")
	workers := flag.Int("workers", 0, "parallel round-assignment search workers (0 = GOMAXPROCS, 1 = sequential)")
	portfolio := flag.Bool("portfolio", false, "race the solver portfolio per placement; deterministic and exact")
	objective := flag.String("objective", "makespan", `exploration objective: "makespan" (fig. 4 rows) or "pareto" (full energy/latency front per power setting)`)
	csvPath := flag.String("csv", "", "also write the table as a CSV figure artifact to this path")
	flag.Parse()
	figures.Workers = *workers
	figures.Portfolio = *portfolio

	var tab *expt.Table
	var points []dse.Point
	switch *objective {
	case "", "makespan":
		pts, err := figures.Fig4()
		if err != nil {
			fatal(err)
		}
		points = pts
		tab = expt.NewTable("Fig. 4 — transmission-power design-space exploration",
			"Q", "worst mean fSS", "diameter", "usable", "latency (µs)")
		for _, p := range points {
			lat := "-"
			if p.Feasible {
				lat = fmt.Sprintf("%d", p.Latency)
			}
			tab.Addf("%.1f\t%.3f\t%d\t%v\t%s", p.Q, p.WorstFSS, p.Diameter, p.Usable, lat)
		}
	case "pareto":
		fronts, err := figures.Fig4Pareto()
		if err != nil {
			fatal(err)
		}
		tab = expt.NewTable("Fig. 4 + energy axis — per-setting energy/latency Pareto fronts",
			"Q", "diameter", "usable", "makespan (µs)", "energy (pC)", "charge (µC)", "slack")
		for _, qf := range fronts {
			points = append(points, qf.Point)
			if !qf.Point.Feasible {
				tab.Addf("%.1f\t%d\t%v\t-\t-\t-\t-",
					qf.Point.Q, qf.Point.Diameter, qf.Point.Usable)
				continue
			}
			for _, fp := range qf.Front {
				slack := "-"
				if !math.IsInf(fp.Slack, 1) {
					slack = fmt.Sprintf("%.4f", fp.Slack)
				}
				tab.Addf("%.1f\t%d\t%v\t%d\t%d\t%.3f\t%s",
					qf.Point.Q, qf.Point.Diameter, qf.Point.Usable,
					fp.LatencyUS, fp.EnergyPC, fp.ChargeUC, slack)
			}
		}
	default:
		fatal(fmt.Errorf("unknown objective %q (makespan or pareto)", *objective))
	}
	fmt.Print(tab.String())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := tab.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *csvPath)
	}

	if *deadline > 0 {
		best, ok := dse.MinPowerForLatency(points, *deadline)
		if !ok {
			fmt.Printf("no power setting meets a %d µs latency deadline\n", *deadline)
			return
		}
		fmt.Printf("minimum power meeting %d µs: Q=%.1f (latency %d µs)\n", *deadline, best.Q, best.Latency)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netdag-dse:", err)
	os.Exit(1)
}
