// Command netdag-dse regenerates fig. 4 of the paper: the §IV-D
// transmission-power design-space exploration — per power setting Q, the
// profiled worst-case mean filtered signal strength, the network
// diameter, and the end-to-end latency NETDAG reports for A_MIMO under
// the eq. (15) statistic.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netdag/netdag/internal/dse"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/figures"
)

func main() {
	deadline := flag.Int64("deadline", 0, "if positive, report the minimum power meeting this latency (µs)")
	workers := flag.Int("workers", 0, "parallel round-assignment search workers (0 = GOMAXPROCS, 1 = sequential)")
	portfolio := flag.Bool("portfolio", false, "race the solver portfolio per placement; deterministic and exact")
	flag.Parse()
	figures.Workers = *workers
	figures.Portfolio = *portfolio

	points, err := figures.Fig4()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netdag-dse:", err)
		os.Exit(1)
	}
	tab := expt.NewTable("Fig. 4 — transmission-power design-space exploration",
		"Q", "worst mean fSS", "diameter", "usable", "latency (µs)")
	for _, p := range points {
		lat := "-"
		if p.Feasible {
			lat = fmt.Sprintf("%d", p.Latency)
		}
		tab.Addf("%.1f\t%.3f\t%d\t%v\t%s", p.Q, p.WorstFSS, p.Diameter, p.Usable, lat)
	}
	fmt.Print(tab.String())

	if *deadline > 0 {
		best, ok := dse.MinPowerForLatency(points, *deadline)
		if !ok {
			fmt.Printf("no power setting meets a %d µs latency deadline\n", *deadline)
			return
		}
		fmt.Printf("minimum power meeting %d µs: Q=%.1f (latency %d µs)\n", *deadline, best.Q, best.Latency)
	}
}
