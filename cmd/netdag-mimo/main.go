// Command netdag-mimo regenerates fig. 2 of the paper: the makespan of
// the A_MIMO application as weakly-hard constraints are incrementally
// applied to its actuator tasks, at several strictness levels.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/figures"
)

func main() {
	workers := flag.Int("workers", 0, "parallel round-assignment search workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	figures.Workers = *workers

	points, err := figures.Fig2()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netdag-mimo:", err)
		os.Exit(1)
	}
	tab := expt.NewTable("Fig. 2 — A_MIMO makespan vs incremental weakly-hard constraints",
		"level (misses,window)~", "constrained actuators", "makespan (µs)")
	for _, p := range points {
		tab.Addf("%v\t%d\t%d", p.Level, p.Constrained, p.Makespan)
	}
	fmt.Print(tab.String())
}
