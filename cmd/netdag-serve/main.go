// Command netdag-serve runs the NETDAG scheduling service: a JSON API
// that solves problem specs on demand, with a content-addressed solution
// cache, request coalescing, admission control and per-request solve
// deadlines.
//
// Usage:
//
//	netdag-serve [-addr :8080] [-cache 256] [-solves N] [-queue 64]
//	             [-workers 0] [-deadline 0] [-max-deadline 0] [-drain 10s]
//	             [-sessions 8] [-session-deadline 2s] [-session-attempts 3]
//	             [-journal cache.journal]
//	             [-peer-name a -peers a=http://h1:8080,b=http://h2:8080]
//
// Endpoints:
//
//	POST   /v1/solve[?deadline=500ms]  spec.File in, spec.ScheduleOut out
//	POST   /v1/solve-batch             {"specs":[...]} in, per-item statuses out
//	POST   /v1/session                 create a long-lived scheduler session
//	GET    /v1/session/{id}            session status snapshot
//	POST   /v1/session/{id}/events     apply one delta event
//	GET    /v1/session/{id}/journal    replayable event journal (?since=N)
//	GET    /v1/session/{id}/feed       streaming JSONL journal feed
//	DELETE /v1/session/{id}            close; answers the final counters
//	GET    /healthz                    200 serving | 503 draining
//	GET    /metrics                    Prometheus text format
//
// SIGINT/SIGTERM drains gracefully: listeners close, in-flight requests
// get -drain to finish (their solves are then canceled and respond with
// incumbents where one exists).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netdag/netdag/internal/cluster"
	"github.com/netdag/netdag/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache", 256, "solution cache capacity (entries)")
	maxSolves := flag.Int("solves", 0, "concurrent solve budget (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "max solves queued for a worker slot before 429")
	workers := flag.Int("workers", 0, "round-assignment search workers per solve (0 = GOMAXPROCS)")
	portfolio := flag.Bool("portfolio", false, "race the solver portfolio per solve; deterministic and exact")
	defDeadline := flag.Duration("deadline", 0, "default per-request solve deadline (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on per-request deadlines (0 = uncapped)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget on SIGTERM")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit (bytes)")
	maxSessions := flag.Int("sessions", 8, "max live scheduler sessions")
	sessDeadline := flag.Duration("session-deadline", 0, "per-attempt re-solve deadline inside a session (0 = library default)")
	sessAttempts := flag.Int("session-attempts", 0, "re-solve attempts before a session degrades (0 = library default)")
	retrySeed := flag.Int64("retry-seed", 0, "jitter seed for 429 Retry-After hints (0 = deterministic envelope)")
	journalPath := flag.String("journal", "", "persistent cache journal file (empty = in-memory cache only)")
	peerName := flag.String("peer-name", "", "this instance's name on the cluster ring")
	peerList := flag.String("peers", "", "cluster membership as name=baseURL,name=baseURL,... (must include -peer-name)")
	ringReplicas := flag.Int("ring-replicas", cluster.DefaultReplicas, "virtual nodes per peer on the hash ring")
	warm := flag.Bool("warm", true, "warm-start cache misses from structurally identical cached schedules")
	batchItems := flag.Int("batch-items", 256, "max specs per /v1/solve-batch request")
	batchBytes := flag.Int64("batch-bytes", 16<<20, "batch request body limit (bytes)")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	var clusterCfg cluster.Config
	if *peerList != "" || *peerName != "" {
		peers, err := cluster.ParsePeers(*peerList)
		if err != nil {
			logger.Error("invalid -peers", "err", err)
			os.Exit(2)
		}
		clusterCfg = cluster.Config{Self: *peerName, Peers: peers, Replicas: *ringReplicas}
		if err := clusterCfg.Validate(); err != nil {
			logger.Error("invalid cluster flags", "err", err)
			os.Exit(2)
		}
	}

	// baseCtx is the solves' lifetime: it outlives the signal context by
	// the drain budget so in-flight requests can finish, then cancels,
	// interrupting any solve still running.
	baseCtx, cancelSolves := context.WithCancel(context.Background())
	defer cancelSolves()

	srv := serve.New(serve.Config{
		CacheEntries:     *cacheEntries,
		MaxConcurrent:    *maxSolves,
		QueueDepth:       *queueDepth,
		SolveWorkers:     *workers,
		Portfolio:        *portfolio,
		DefaultDeadline:  *defDeadline,
		MaxDeadline:      *maxDeadline,
		MaxBodyBytes:     *maxBody,
		MaxSessions:      *maxSessions,
		SessionDeadline:  *sessDeadline,
		SessionAttempts:  *sessAttempts,
		RetrySeed:        *retrySeed,
		Cluster:          clusterCfg,
		DisableWarmStart: !*warm,
		MaxBatchItems:    *batchItems,
		MaxBatchBytes:    *batchBytes,
		Logger:           logger,
		BaseContext:      baseCtx,
	})

	if *journalPath != "" {
		if _, err := srv.AttachJournal(*journalPath); err != nil {
			logger.Error("journal attach failed", "path", *journalPath, "err", err)
			os.Exit(1)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errCh:
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}

	logger.Info("draining", "budget", drain.String())
	srv.SetDraining()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
	}
	srv.CloseSessions() // journals stop growing; feeds end cleanly
	cancelSolves()      // interrupt anything still searching
	if err := srv.CloseJournal(); err != nil {
		logger.Error("journal close", "err", err)
	}
	logger.Info("stopped")
	fmt.Fprintln(os.Stderr, "netdag-serve: drained")
}
