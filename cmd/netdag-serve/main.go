// Command netdag-serve runs the NETDAG scheduling service: a JSON API
// that solves problem specs on demand, with a content-addressed solution
// cache, request coalescing, admission control and per-request solve
// deadlines.
//
// Usage:
//
//	netdag-serve [-addr :8080] [-cache 256] [-solves N] [-queue 64]
//	             [-workers 0] [-deadline 0] [-max-deadline 0] [-drain 10s]
//
// Endpoints:
//
//	POST /v1/solve[?deadline=500ms]  spec.File in, spec.ScheduleOut out
//	GET  /healthz                    200 serving | 503 draining
//	GET  /metrics                    Prometheus text format
//
// SIGINT/SIGTERM drains gracefully: listeners close, in-flight requests
// get -drain to finish (their solves are then canceled and respond with
// incumbents where one exists).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netdag/netdag/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache", 256, "solution cache capacity (entries)")
	maxSolves := flag.Int("solves", 0, "concurrent solve budget (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "max solves queued for a worker slot before 429")
	workers := flag.Int("workers", 0, "round-assignment search workers per solve (0 = GOMAXPROCS)")
	portfolio := flag.Bool("portfolio", false, "race the solver portfolio per solve; deterministic and exact")
	defDeadline := flag.Duration("deadline", 0, "default per-request solve deadline (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on per-request deadlines (0 = uncapped)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget on SIGTERM")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit (bytes)")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	// baseCtx is the solves' lifetime: it outlives the signal context by
	// the drain budget so in-flight requests can finish, then cancels,
	// interrupting any solve still running.
	baseCtx, cancelSolves := context.WithCancel(context.Background())
	defer cancelSolves()

	srv := serve.New(serve.Config{
		CacheEntries:    *cacheEntries,
		MaxConcurrent:   *maxSolves,
		QueueDepth:      *queueDepth,
		SolveWorkers:    *workers,
		Portfolio:       *portfolio,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		MaxBodyBytes:    *maxBody,
		Logger:          logger,
		BaseContext:     baseCtx,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errCh:
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}

	logger.Info("draining", "budget", drain.String())
	srv.SetDraining()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
	}
	cancelSolves() // interrupt anything still searching
	logger.Info("stopped")
	fmt.Fprintln(os.Stderr, "netdag-serve: drained")
}
