// Command netdag-cartpole regenerates fig. 3 of the paper: the mean
// balanced-step count of the neural-network cartpole controller under
// injected (m, K) weakly-hard faults (eq. 14 hold-last-output actuation,
// eq. 12 adversarial miss patterns).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/figures"
)

func main() {
	episodes := flag.Int("episodes", 100, "episodes per (m,K) grid cell")
	seed := flag.Int64("seed", 1, "fault-injection RNG seed")
	flag.Parse()

	cells, err := figures.Fig3(*episodes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netdag-cartpole:", err)
		os.Exit(1)
	}
	tab := expt.NewTable("Fig. 3 — cartpole balance vs injected (m,K) faults",
		"window K", "misses m", "mean balanced steps")
	for _, c := range cells {
		tab.Addf("%d\t%d\t%.1f", c.Window, c.Misses, c.MeanSteps)
	}
	fmt.Print(tab.String())
}
