// Command netdag-figures regenerates every evaluation artifact (Table I,
// the §IV-A validation tables, figs. 2-4, the ablations) and writes each
// as a CSV file into the output directory — the one-shot reproduction
// driver behind EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/figures"
)

func main() {
	outDir := flag.String("out", "figures-out", "output directory for CSV files")
	episodes := flag.Int("episodes", 100, "episodes per fig. 3 grid cell")
	runs := flag.Int("runs", 10000, "validation runs")
	seed := flag.Int64("seed", 1, "experiment seed")
	workers := flag.Int("workers", 0, "parallel round-assignment search workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	figures.Workers = *workers

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, tab *expt.Table) {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tab.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	// Table I + bridge.
	t1, err := figures.TableI()
	if err != nil {
		fatal(err)
	}
	tab := expt.NewTable("", "paradigm", "guarantee", "makespan_us", "bus_us")
	for _, r := range t1 {
		tab.Addf("%s\t%s\t%d\t%d", r.Paradigm, r.Guarantee, r.Makespan, r.BusTime)
	}
	write("table1.csv", tab)

	tab = expt.NewTable("", "horizon", "probability")
	for _, r := range figures.TableIBridge() {
		tab.Addf("%d\t%.6f", r.Horizon, r.Probability)
	}
	write("table1_bridge.csv", tab)

	// §IV-A validation.
	val, err := figures.Validation(*runs, *seed)
	if err != nil {
		fatal(err)
	}
	tab = expt.NewTable("", "task", "target", "scheduled", "statistic", "pass")
	for _, r := range val.Soft {
		tab.Addf("%s\t%.4f\t%.4f\t%.4f\t%v", r.Name, r.Target, r.Scheduled, r.Statistic, r.Pass)
	}
	write("validation_soft.csv", tab)
	tab = expt.NewTable("", "task", "requirement", "guarantee", "worst_misses", "pass")
	for _, r := range val.WH {
		tab.Addf("%s\t%v\t%v\t%d\t%v", r.Name, r.Requirement, r.Guarantee, r.WorstMisses, r.Pass)
	}
	write("validation_wh.csv", tab)

	// Fig. 2.
	f2, err := figures.Fig2()
	if err != nil {
		fatal(err)
	}
	tab = expt.NewTable("", "level", "constrained_actuators", "makespan_us")
	for _, p := range f2 {
		tab.Addf("%v\t%d\t%d", p.Level, p.Constrained, p.Makespan)
	}
	write("fig2.csv", tab)

	// Fig. 3.
	f3, err := figures.Fig3(*episodes, *seed)
	if err != nil {
		fatal(err)
	}
	tab = expt.NewTable("", "window", "misses", "mean_steps")
	for _, c := range f3 {
		tab.Addf("%d\t%d\t%.2f", c.Window, c.Misses, c.MeanSteps)
	}
	write("fig3.csv", tab)

	// Fig. 4.
	f4, err := figures.Fig4()
	if err != nil {
		fatal(err)
	}
	tab = expt.NewTable("", "q", "worst_fss", "diameter", "usable", "latency_us", "charge_uc")
	for _, p := range f4 {
		lat := ""
		if p.Feasible {
			lat = fmt.Sprintf("%d", p.Latency)
		}
		tab.Addf("%.2f\t%.4f\t%d\t%v\t%s\t%.1f", p.Q, p.WorstFSS, p.Diameter, p.Usable, lat, p.RadioChargeUC)
	}
	write("fig4.csv", tab)

	// Diameter sensitivity.
	ds, err := figures.DiameterSweep()
	if err != nil {
		fatal(err)
	}
	tab = expt.NewTable("", "diameter", "makespan_us", "bus_us")
	for _, r := range ds {
		tab.Addf("%d\t%d\t%d", r.Diameter, r.Makespan, r.BusTime)
	}
	write("diameter.csv", tab)

	// Ablations.
	a2, err := figures.AblationA2()
	if err != nil {
		fatal(err)
	}
	tab = expt.NewTable("", "target", "netdag_bus_us", "baseline_bus_us", "netdag_span_us", "baseline_span_us")
	for _, r := range a2 {
		tab.Addf("%.2f\t%d\t%d\t%d\t%d", r.Target, r.NETDAGBus, r.BaselineBus, r.NETDAGSpan, r.BaselineSpan)
	}
	write("ablation_a2.csv", tab)

	a5, err := figures.AblationA5(1000, *seed)
	if err != nil {
		fatal(err)
	}
	tab = expt.NewTable("", "guard_us", "hit_rate", "beacon_capture", "desync_rate")
	for _, r := range a5 {
		tab.Addf("%.0f\t%.4f\t%.4f\t%.4f", r.GuardUS, r.HitRate, r.BeaconRate, r.DesyncRate)
	}
	write("ablation_a5.csv", tab)

	a6, err := figures.AblationA6(3000, *seed)
	if err != nil {
		fatal(err)
	}
	tab = expt.NewTable("", "stack", "design_rate", "mutated_rate")
	for _, r := range a6 {
		tab.Addf("%s\t%.4f\t%.4f", r.Stack, r.DesignRate, r.MutatedRate)
	}
	write("ablation_a6.csv", tab)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netdag-figures:", err)
	os.Exit(1)
}
