// Command netdag-validate runs the paper's §IV-A simulation-based
// validation: it schedules a soft pipeline and the weakly-hard A_MIMO,
// samples predecessor behaviour per eq. (11) (i.i.d. Bernoulli) and
// eq. (12) (adversarial boundary patterns), and checks the task-level
// constraints against the composed behaviour ω_τ = ∧ ω_x.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/figures"
)

func main() {
	runs := flag.Int("runs", 10000, "independent runs per task")
	seed := flag.Int64("seed", 1, "sampling RNG seed")
	flag.Parse()

	res, err := figures.Validation(*runs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netdag-validate:", err)
		os.Exit(1)
	}
	soft := expt.NewTable("§IV-A soft validation (eq. 11)", "task", "target", "scheduled", "statistic v", "pass")
	for _, r := range res.Soft {
		soft.Addf("%s\t%.4f\t%.4f\t%.4f\t%v", r.Name, r.Target, r.Scheduled, r.Statistic, r.Pass)
	}
	fmt.Print(soft.String())
	fmt.Println()
	hard := expt.NewTable("§IV-A weakly-hard validation (eq. 12)", "task", "requirement", "guarantee", "worst misses", "pass")
	for _, r := range res.WH {
		hard.Addf("%s\t%v\t%v\t%d\t%v", r.Name, r.Requirement, r.Guarantee, r.WorstMisses, r.Pass)
	}
	fmt.Print(hard.String())

	for _, r := range res.Soft {
		if !r.Pass {
			os.Exit(1)
		}
	}
	for _, r := range res.WH {
		if !r.Pass {
			os.Exit(1)
		}
	}
}
