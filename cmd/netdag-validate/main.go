// Command netdag-validate runs the paper's §IV-A simulation-based
// validation: it schedules a soft pipeline and the weakly-hard A_MIMO,
// samples predecessor behaviour per eq. (11) (i.i.d. Bernoulli) and
// eq. (12) (adversarial boundary patterns), and checks the task-level
// constraints against the composed behaviour ω_τ = ∧ ω_x.
//
// Given a positional problem spec, it instead validates that spec
// empirically end-to-end: solve, deploy onto a clique topology, run a
// deterministic fault-injection campaign (optionally under a -faults
// scenario) and certify the observed miss streams against the spec's
// declared constraints. Exits non-zero on any failed check.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netdag/netdag/internal/campaign"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/figures"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/spec"
)

func main() {
	runs := flag.Int("runs", 10000, "independent runs per task (per replication in spec mode)")
	seed := flag.Int64("seed", 1, "sampling RNG seed (campaign master seed in spec mode)")
	reps := flag.Int("campaign", 100, "replications of the certification campaign (spec mode)")
	prr := flag.Float64("prr", 0.9, "uniform link packet reception ratio of the clique (spec mode)")
	faultsFile := flag.String("faults", "", "JSON fault scenario to inject (spec mode)")
	confidence := flag.Float64("confidence", campaign.DefaultConfidence, "Wilson confidence level for soft certification (spec mode)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: netdag-validate [flags] [problem.json]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		validateSpec(flag.Arg(0), *runs, *seed, *reps, *prr, *faultsFile, *confidence, *workers)
		return
	}

	res, err := figures.Validation(*runs, *seed)
	if err != nil {
		fatal(err)
	}
	soft := expt.NewTable("§IV-A soft validation (eq. 11)", "task", "target", "scheduled", "statistic v", "pass")
	for _, r := range res.Soft {
		soft.Addf("%s\t%.4f\t%.4f\t%.4f\t%v", r.Name, r.Target, r.Scheduled, r.Statistic, r.Pass)
	}
	fmt.Print(soft.String())
	fmt.Println()
	hard := expt.NewTable("§IV-A weakly-hard validation (eq. 12)", "task", "requirement", "guarantee", "worst misses", "pass")
	for _, r := range res.WH {
		hard.Addf("%s\t%v\t%v\t%d\t%v", r.Name, r.Requirement, r.Guarantee, r.WorstMisses, r.Pass)
	}
	fmt.Print(hard.String())

	for _, r := range res.Soft {
		if !r.Pass {
			os.Exit(1)
		}
	}
	for _, r := range res.WH {
		if !r.Pass {
			os.Exit(1)
		}
	}
}

// validateSpec solves a problem spec, deploys it, runs a certification
// campaign against it and exits 1 if any declared constraint is
// empirically violated.
func validateSpec(path string, runs int, seed int64, reps int, prr float64, faultsFile string, confidence float64, workers int) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	p, err := spec.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	p.Workers = workers
	var scenario *sim.Scenario
	if faultsFile != "" {
		sf, err := os.Open(faultsFile)
		if err != nil {
			fatal(err)
		}
		scenario, err = sim.LoadScenario(sf)
		sf.Close()
		if err != nil {
			fatal(err)
		}
	}
	s, err := core.Solve(p)
	if err != nil {
		fatal(err)
	}
	topo := network.Clique(len(p.App.Nodes()), prr)
	d, err := lwb.NewDeployment(p.App, s, topo, p.Params)
	if err != nil {
		fatal(err)
	}
	res, err := campaign.Run(d, campaign.Config{
		Replications: reps,
		Runs:         runs,
		Seed:         seed,
		Workers:      workers,
		Scenario:     scenario,
		Clocks:       sim.DefaultClockConfig(),
	})
	if err != nil {
		fatal(err)
	}
	rep, err := campaign.Certify(p, res, confidence)
	if err != nil {
		fatal(err)
	}
	tab := expt.NewTable(fmt.Sprintf("empirical validation (%s mode, %d×%d runs, confidence %.2f)",
		rep.Mode, rep.Replications, rep.Runs, rep.Confidence),
		"task", "status", "evidence", "replay seed")
	for _, t := range rep.Tasks {
		var evidence string
		if t.Window > 0 {
			evidence = fmt.Sprintf("worst window %d/%d vs (%d,%d)~", t.WorstMisses, t.Window, t.Misses, t.Window)
		} else {
			evidence = fmt.Sprintf("rate %.4f in [%.4f,%.4f] vs %.4f", t.HitRate, t.WilsonLo, t.WilsonHi, t.Target)
		}
		tab.Addf("%s\t%s\t%s\t%d", t.Task, t.Status, evidence, t.WorstSeed)
	}
	fmt.Print(tab.String())
	if rep.Violations > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netdag-validate:", err)
	os.Exit(1)
}
