// Command netdag-gen emits a seeded regression corpus of NETDAG
// scenarios: random clique topologies × DAG shapes (pipelines, fan-in
// with identical sources, fan-out, diamonds, layered graphs) × period
// sets (multi-rate task subsets, harmonic and non-harmonic) ×
// constraint mixes (weakly-hard and soft, tight and loose), each solved
// and recorded with its expected outcome.
//
// Every scenario is generated from the master seed and its own index
// only, so the corpus — spec files plus MANIFEST.json — is bit-identical
// across runs, worker counts and machines. Per scenario the tool:
//
//   - solves the spec and records makespan / optimality / enumeration
//     size (or the unsat outcome — infeasible scenarios are regression
//     cases too: the solver must keep rejecting them);
//   - re-solves with symmetry breaking disabled and fails unless the
//     makespan is identical (the skip must be exact on every scenario,
//     not just the hand-written tests);
//   - every -certify-every-th solved scenario, deploys the schedule on
//     a clique and runs a seeded fault-injection campaign, certifying
//     the observed miss streams against the declared constraints.
//
// Usage:
//
//	netdag-gen [-n 200] [-seed 9] [-out examples/corpus]
//	           [-workers 0] [-certify-every 20] [-no-symmetry-check]
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/netdag/netdag/internal/campaign"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/sim"
	"github.com/netdag/netdag/internal/spec"
)

// scenarioEntry is one MANIFEST record. Only run-invariant facts go in:
// SolverNodes and wall times differ across worker counts and machines,
// so they are deliberately absent — the manifest must be bit-identical
// for the CI determinism diff.
type scenarioEntry struct {
	File      string `json:"file"`
	SHA256    string `json:"sha256"`
	Shape     string `json:"shape"`
	Mode      string `json:"mode"`
	BaseTasks int    `json:"baseTasks"`
	Tasks     int    `json:"tasks"`    // after unroll
	Messages  int    `json:"messages"` // after unroll
	Multirate bool   `json:"multirate"`

	Status   string `json:"status"` // solved | unsat
	Makespan int64  `json:"makespan,omitempty"`
	Optimal  bool   `json:"optimal,omitempty"`
	Explored int    `json:"explored,omitempty"`

	SymmetryEqual bool   `json:"symmetryEqual,omitempty"` // NoSymmetry re-solve matched
	Certified     string `json:"certified,omitempty"`     // pass | violated(n) | "" (not sampled)
}

// manifest is the corpus index, written as MANIFEST.json.
type manifest struct {
	Generator string          `json:"generator"`
	Seed      int64           `json:"seed"`
	Scenarios int             `json:"scenarios"`
	Aggregate aggregate       `json:"aggregate"`
	Entries   []scenarioEntry `json:"entries"`
}

type aggregate struct {
	Solved        int            `json:"solved"`
	Unsat         int            `json:"unsat"`
	Multirate     int            `json:"multirate"`
	ByShape       map[string]int `json:"byShape"`
	ByMode        map[string]int `json:"byMode"`
	TotalExplored int            `json:"totalExplored"`
	MaxExplored   int            `json:"maxExplored"`
	SymChecked    int            `json:"symmetryChecked"`
	Certified     int            `json:"certified"`
}

var shapes = []string{"pipeline", "fanin", "fanout", "diamond", "layered"}

func main() {
	n := flag.Int("n", 200, "scenarios to generate")
	seed := flag.Int64("seed", 9, "master corpus seed")
	out := flag.String("out", "examples/corpus", "output directory")
	workers := flag.Int("workers", 0, "solver workers (0 = GOMAXPROCS; any value yields the same corpus)")
	certifyEvery := flag.Int("certify-every", 20, "certify every k-th solved scenario (0 = never)")
	certifyReps := flag.Int("certify-reps", 5, "campaign replications per certified scenario")
	certifyRuns := flag.Int("certify-runs", 200, "schedule periods per replication")
	noSymCheck := flag.Bool("no-symmetry-check", false, "skip the NoSymmetry makespan cross-check")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	man := manifest{
		Generator: "netdag-gen",
		Seed:      *seed,
		Scenarios: *n,
		Aggregate: aggregate{ByShape: map[string]int{}, ByMode: map[string]int{}},
	}
	start := time.Now()
	failures := 0
	for i := 0; i < *n; i++ {
		// Per-scenario PRNG keyed by (seed, index) alone: scenario i is
		// the same no matter how many scenarios surround it.
		rng := rand.New(rand.NewSource(*seed*1_000_003 + int64(i)))
		f, shape := genScenario(rng)
		body, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		body = append(body, '\n')
		name := fmt.Sprintf("scenario-%03d.json", i)
		if err := os.WriteFile(filepath.Join(*out, name), body, 0o644); err != nil {
			fatal(err)
		}
		sum := sha256.Sum256(body)
		ent := scenarioEntry{
			File:      name,
			SHA256:    hex.EncodeToString(sum[:]),
			Shape:     shape,
			Mode:      f.Mode,
			BaseTasks: len(f.Tasks),
			Multirate: len(f.Rates) > 0,
		}

		p, err := spec.Load(strings.NewReader(string(body)))
		if err != nil {
			fatal(fmt.Errorf("scenario %d: generated invalid spec: %w", i, err))
		}
		p.Workers = *workers
		ent.Tasks = p.App.NumTasks()
		ent.Messages = p.App.NumMessages()

		s, err := core.Solve(p)
		switch {
		case err == nil:
			ent.Status = "solved"
			ent.Makespan = s.Makespan
			ent.Optimal = s.Optimal
			ent.Explored = s.Explored
			man.Aggregate.Solved++
			man.Aggregate.TotalExplored += s.Explored
			if s.Explored > man.Aggregate.MaxExplored {
				man.Aggregate.MaxExplored = s.Explored
			}
		case errors.Is(err, core.ErrUnsat):
			ent.Status = "unsat"
			man.Aggregate.Unsat++
		default:
			fatal(fmt.Errorf("scenario %d: unexpected solve failure: %w", i, err))
		}

		if ent.Status == "solved" && !*noSymCheck {
			q, err := spec.Load(strings.NewReader(string(body)))
			if err != nil {
				fatal(err)
			}
			q.Workers = *workers
			q.NoSymmetry = true
			s2, err := core.Solve(q)
			if err != nil {
				fatal(fmt.Errorf("scenario %d: NoSymmetry re-solve failed: %w", i, err))
			}
			ent.SymmetryEqual = s2.Makespan == s.Makespan
			man.Aggregate.SymChecked++
			if !ent.SymmetryEqual {
				fmt.Fprintf(os.Stderr, "netdag-gen: scenario %d: symmetry skip changed the makespan (%d vs %d)\n",
					i, s.Makespan, s2.Makespan)
				failures++
			}
		}

		if ent.Status == "solved" && *certifyEvery > 0 && i%*certifyEvery == 0 {
			verdict, err := certify(p, s, *seed+int64(1_000_000+i), *certifyReps, *certifyRuns, *workers)
			if err != nil {
				fatal(fmt.Errorf("scenario %d: certification: %w", i, err))
			}
			ent.Certified = verdict
			man.Aggregate.Certified++
			if verdict != "pass" {
				fmt.Fprintf(os.Stderr, "netdag-gen: scenario %d: certification %s\n", i, verdict)
				failures++
			}
		}

		man.Aggregate.ByShape[shape]++
		man.Aggregate.ByMode[f.Mode]++
		if ent.Multirate {
			man.Aggregate.Multirate++
		}
		man.Entries = append(man.Entries, ent)
	}

	enc, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.json"), enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"netdag-gen: %d scenarios (%d solved, %d unsat, %d multirate) in %s -> %s\n",
		*n, man.Aggregate.Solved, man.Aggregate.Unsat, man.Aggregate.Multirate,
		time.Since(start).Round(time.Millisecond), *out)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "netdag-gen: %d scenario checks FAILED\n", failures)
		os.Exit(1)
	}
}

// certify deploys the schedule on a clique and runs a seeded
// fault-injection campaign, certifying observed miss streams against
// the declared constraints. Bit-identical across worker counts (the
// campaign seeds replications independently).
func certify(p *core.Problem, s *core.Schedule, seed int64, reps, runs, workers int) (string, error) {
	topo := network.Clique(len(p.App.Nodes()), 0.9)
	d, err := lwb.NewDeployment(p.App, s, topo, p.Params)
	if err != nil {
		return "", err
	}
	res, err := campaign.Run(d, campaign.Config{
		Replications: reps,
		Runs:         runs,
		Seed:         seed,
		Workers:      workers,
		Clocks:       sim.DefaultClockConfig(),
	})
	if err != nil {
		return "", err
	}
	rep, err := campaign.Certify(p, res, campaign.DefaultConfidence)
	if err != nil {
		return "", err
	}
	if rep.Violations > 0 {
		return fmt.Sprintf("violated(%d)", rep.Violations), nil
	}
	return "pass", nil
}

// genScenario draws one random scenario. Sizes are capped so a solve
// stays in the tens-of-milliseconds range: the corpus is a breadth
// regression suite, not a stress benchmark (scripts/bench_pr9.sh covers
// depth).
func genScenario(rng *rand.Rand) (*spec.File, string) {
	shape := shapes[rng.Intn(len(shapes))]
	f := &spec.File{
		Diameter: 2 + rng.Intn(2),
		MaxNTX:   6 + 2*rng.Intn(2),
	}
	if rng.Float64() < 0.7 {
		f.Mode = "weakly-hard"
		f.WHStatistic = &spec.StatSpec{Type: "synthetic"}
	} else {
		f.Mode = "soft"
		f.SoftStatistic = &spec.StatSpec{Type: "bernoulli", PerTX: 0.85 + 0.1*rng.Float64()}
	}

	task := func(name string) string {
		f.Tasks = append(f.Tasks, spec.TaskSpec{
			Name: name,
			Node: "n" + name,
			WCET: 100 + rng.Int63n(2900),
		})
		return name
	}
	edge := func(from, to string) {
		f.Edges = append(f.Edges, spec.EdgeSpec{From: from, To: to, Width: 2 + rng.Intn(14)})
	}

	var sinks []string
	switch shape {
	case "pipeline":
		n := 3 + rng.Intn(3)
		prev := task("t0")
		for k := 1; k < n; k++ {
			cur := task(fmt.Sprintf("t%d", k))
			edge(prev, cur)
			prev = cur
		}
		sinks = []string{prev}
	case "fanin":
		// k sources into a fuse stage; sources are identical with
		// probability 1/2, seeding an interchange class.
		k := 2 + rng.Intn(3)
		identical := rng.Float64() < 0.5
		wcet := 100 + rng.Int63n(2900)
		width := 2 + rng.Intn(14)
		fuse := task("fuse")
		for j := 0; j < k; j++ {
			src := task(fmt.Sprintf("src%d", j))
			if identical {
				f.Tasks[len(f.Tasks)-1].WCET = wcet
			}
			f.Edges = append(f.Edges, spec.EdgeSpec{From: src, To: fuse, Width: width})
			if !identical {
				f.Edges[len(f.Edges)-1].Width = 2 + rng.Intn(14)
			}
		}
		sink := task("sink")
		edge(fuse, sink)
		sinks = []string{sink}
	case "fanout":
		src := task("src")
		k := 2 + rng.Intn(3)
		for j := 0; j < k; j++ {
			c := task(fmt.Sprintf("c%d", j))
			edge(src, c)
			sinks = append(sinks, c)
		}
	case "diamond":
		src := task("src")
		a := task("a")
		b := task("b")
		sink := task("sink")
		edge(src, a)
		edge(src, b)
		edge(a, sink)
		edge(b, sink)
		sinks = []string{sink}
	case "layered":
		// Two layers with random cross edges; every layer-2 task
		// consumes at least one layer-1 task.
		k1, k2 := 2+rng.Intn(2), 2+rng.Intn(2)
		var l1 []string
		for j := 0; j < k1; j++ {
			l1 = append(l1, task(fmt.Sprintf("u%d", j)))
		}
		for j := 0; j < k2; j++ {
			v := task(fmt.Sprintf("v%d", j))
			first := rng.Intn(k1)
			edge(l1[first], v)
			for q := 0; q < k1; q++ {
				if q != first && rng.Float64() < 0.4 {
					edge(l1[q], v)
				}
			}
			sinks = append(sinks, v)
		}
	}

	// Period set: a subset of tasks runs 2-4 times per hyperperiod.
	// Harmonic rates dominate; 3 appears occasionally to exercise the
	// non-harmonic rate-transition rule. Capped at 3 rated tasks so the
	// unrolled enumeration stays corpus-sized.
	if rng.Float64() < 0.6 {
		f.Rates = map[string]int{}
		rated := rng.Perm(len(f.Tasks))[:1+rng.Intn(min(3, len(f.Tasks)))]
		for _, ti := range rated {
			r := []int{2, 2, 4, 3}[rng.Intn(4)]
			f.Rates[f.Tasks[ti].Name] = r
		}
	}

	// Constraint mix on the sinks (sink-only keeps the §III structure
	// conditions trivially satisfied). Tight mixes produce occasional
	// unsat scenarios by design.
	switch f.Mode {
	case "weakly-hard":
		f.WHConstraints = map[string]spec.WHSpec{}
		for _, s := range sinks {
			if rng.Float64() < 0.85 {
				w := []int{20, 40}[rng.Intn(2)]
				f.WHConstraints[s] = spec.WHSpec{
					Misses: w/2 + rng.Intn(w/2),
					Window: w,
				}
			}
		}
		if len(f.WHConstraints) == 0 {
			f.WHConstraints = nil
		}
	case "soft":
		f.SoftConstraints = map[string]float64{}
		for _, s := range sinks {
			if rng.Float64() < 0.85 {
				// Two decimals keep the JSON stable and human-readable.
				f.SoftConstraints[s] = 0.80 + float64(rng.Intn(18))/100
			}
		}
		if len(f.SoftConstraints) == 0 {
			f.SoftConstraints = nil
		}
	}
	return f, shape
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netdag-gen:", err)
	os.Exit(1)
}
