package netdag

// End-to-end integration tests: the full NETDAG pipeline from a JSON
// problem spec through scheduling, export, bus deployment over a lossy
// topology, and statistical validation — the path a real user walks.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"github.com/netdag/netdag/internal/apps"
	"github.com/netdag/netdag/internal/core"
	"github.com/netdag/netdag/internal/dag"
	"github.com/netdag/netdag/internal/glossy"
	"github.com/netdag/netdag/internal/lwb"
	"github.com/netdag/netdag/internal/multirate"
	"github.com/netdag/netdag/internal/network"
	"github.com/netdag/netdag/internal/spec"
	"github.com/netdag/netdag/internal/validate"
	"github.com/netdag/netdag/internal/wh"
)

const pipelineSpec = `{
  "mode": "soft",
  "diameter": 2,
  "tasks": [
    {"name": "sense", "node": "n0", "wcet": 500},
    {"name": "ctrl",  "node": "n1", "wcet": 2000},
    {"name": "act",   "node": "n2", "wcet": 300}
  ],
  "edges": [
    {"from": "sense", "to": "ctrl", "width": 8},
    {"from": "ctrl",  "to": "act",  "width": 4}
  ],
  "softStatistic": {"type": "bernoulli", "perTX": 0.85},
  "softConstraints": {"act": 0.9}
}`

// TestSpecToDeploymentPipeline walks spec -> solve -> audit -> export ->
// deploy -> empirical check.
func TestSpecToDeploymentPipeline(t *testing.T) {
	p, err := spec.Load(strings.NewReader(pipelineSpec))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(p.App); err != nil {
		t.Fatalf("schedule audit: %v", err)
	}
	// Export must produce parseable JSON with consistent totals.
	var buf bytes.Buffer
	if err := spec.WriteJSON(&buf, p, s); err != nil {
		t.Fatal(err)
	}
	var out spec.ScheduleOut
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var slotSum int64
	for _, r := range out.Rounds {
		slotSum += r.DurationUS
	}
	if slotSum != out.BusTimeUS {
		t.Errorf("exported round durations %d != bus time %d", slotSum, out.BusTimeUS)
	}
	// Deploy over a 3-node line whose links match the statistic's
	// per-transmission success.
	topo := network.Line(3, 0.85)
	d, err := lwb.NewDeployment(p.App, s, topo, p.Params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	seqs, err := d.Run(4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	act, _ := p.App.TaskByName("act")
	rate := seqs[act.ID].HitRate()
	if rate < 0.7 {
		t.Errorf("deployed end-to-end hit rate %v far below the 0.9 design target", rate)
	}
	// Statistical validation (model-level) must pass.
	rep, err := validate.SoftTask(p, s, act.ID, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("model-level validation failed: %+v", rep)
	}
}

// TestWeaklyHardEndToEnd schedules A_MIMO under weakly-hard constraints,
// validates adversarially, deploys over a lossy grid, and monitors each
// actuator's empirical trace with the paper's requirement via the online
// monitor.
func TestWeaklyHardEndToEnd(t *testing.T) {
	g, err := apps.MIMO(apps.DefaultMIMO())
	if err != nil {
		t.Fatal(err)
	}
	req := wh.MissConstraint{Misses: 20, Window: 40}
	cons := make(map[dag.TaskID]wh.MissConstraint)
	for _, a := range apps.Actuators(g) {
		cons[a] = req
	}
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 4,
		Mode: core.WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	reports, err := validate.WHAll(p, s, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Pass {
			t.Fatalf("adversarial validation failed for %s", r.Name)
		}
	}
	// Deploy on a 16-node grid with strong links: the empirical miss
	// process is then much tamer than the adversarial bound, so the
	// online monitor must stay green.
	topo := network.Grid(4, 4, 0.95)
	d, err := lwb.NewDeployment(g, s, topo, p.Params)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := d.Run(2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps.Actuators(g) {
		mon, err := wh.NewMissMonitor(req)
		if err != nil {
			t.Fatal(err)
		}
		if v := mon.PushSeq(seqs[a]); v != 0 {
			t.Errorf("actuator %d violated %v on the deployed bus (%d windows; hit rate %v)",
				a, req, v, seqs[a].HitRate())
		}
	}
}

// TestMultirateEndToEnd unrolls, schedules and audits a multi-rate app.
func TestMultirateEndToEnd(t *testing.T) {
	base := dag.New()
	sense := base.MustAddTask("sense", "n0", 400)
	ctrl := base.MustAddTask("ctrl", "n1", 1200)
	act := base.MustAddTask("act", "n2", 200)
	base.MustConnect(sense, ctrl, 8)
	base.MustConnect(ctrl, act, 4)
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := multirate.Unroll(multirate.Spec{
		App:   base,
		Rates: map[dag.TaskID]int{ctrl: 2, act: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cons := multirate.SpreadConstraints(res, map[dag.TaskID]wh.MissConstraint{
		act: {Misses: 12, Window: 40},
	})
	p := &core.Problem{
		App: res.Graph, Params: glossy.DefaultParams(), Diameter: 3,
		Mode: core.WeaklyHard, WHStat: glossy.SyntheticWH{}, WHCons: cons,
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(res.Graph); err != nil {
		t.Fatalf("multirate schedule audit: %v", err)
	}
	// Both actuation instances carry their guarantee.
	for inst, c := range cons {
		guar, ok, err := core.SatisfiedWH(p, s, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !wh.SufficientlyImpliesMiss(guar, c) {
			t.Errorf("instance %d guarantee %v (ok=%v) misses %v", inst, guar, ok, c)
		}
	}
	// Energy accounting holds together end to end.
	rep, err := lwb.DefaultEnergyModel().Evaluate(s, p.Params, p.Diameter)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TXTimeUS+rep.RXTimeUS != s.BusTime {
		t.Errorf("energy radio-on %d != bus %d", rep.TXTimeUS+rep.RXTimeUS, s.BusTime)
	}
}

// TestMergedApplicationsShareTheBus schedules two independent
// applications as one merged graph: both applications' constraints hold
// and their messages share rounds where the line graph allows.
func TestMergedApplicationsShareTheBus(t *testing.T) {
	ctl, err := apps.Pipeline(3, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	monApp := dag.New()
	m0 := monApp.MustAddTask("probe", "m0", 200)
	m1 := monApp.MustAddTask("collect", "m1", 400)
	monApp.MustConnect(m0, m1, 16)
	if err := monApp.Validate(); err != nil {
		t.Fatal(err)
	}
	merged, trans, err := dag.Merge(map[string]*dag.Graph{"ctl": ctl, "mon": monApp})
	if err != nil {
		t.Fatal(err)
	}
	ctlSink, _ := ctl.TaskByName("stage2")
	p := &core.Problem{
		App: merged, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{
			trans["ctl"][ctlSink.ID]: 0.9,
			trans["mon"][m1]:         0.7,
		},
	}
	s, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(merged); err != nil {
		t.Fatalf("merged schedule audit: %v", err)
	}
	// Both apps' guarantees hold.
	if got, err := core.SatisfiedSoft(p, s, trans["ctl"][ctlSink.ID]); err != nil || got < 0.9 {
		t.Errorf("control app guarantee %v < 0.9 (err %v)", got, err)
	}
	if got, err := core.SatisfiedSoft(p, s, trans["mon"][m1]); err != nil || got < 0.7 {
		t.Errorf("monitoring app guarantee %v < 0.7 (err %v)", got, err)
	}
	// Sharing pays: the merged schedule beats running the two apps
	// back-to-back (which would serialize all rounds and tasks).
	soloCtl, err := core.Solve(&core.Problem{
		App: ctl, Params: glossy.DefaultParams(), Diameter: 3,
		Mode: core.Soft, SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{ctlSink.ID: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	soloMon, err := core.Solve(&core.Problem{
		App: monApp, Params: glossy.DefaultParams(), Diameter: 3,
		Mode: core.Soft, SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{m1: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan >= soloCtl.Makespan+soloMon.Makespan {
		t.Errorf("merged makespan %d not better than serialized %d+%d",
			s.Makespan, soloCtl.Makespan, soloMon.Makespan)
	}
}

// TestBaselineComparisonEndToEnd confirms the headline A2 property on a
// fresh instance: per-flood tuning never reserves more bus time than the
// global baseline, and both validate.
func TestBaselineComparisonEndToEnd(t *testing.T) {
	g, err := apps.Switched(apps.DefaultSwitched())
	if err != nil {
		t.Fatal(err)
	}
	act, _ := g.TaskByName("act0")
	p := &core.Problem{
		App: g, Params: glossy.DefaultParams(), Diameter: 3,
		Mode:     core.Soft,
		SoftStat: glossy.BernoulliSoft{PerTX: 0.9},
		SoftCons: map[dag.TaskID]float64{act.ID: 0.93},
	}
	nd, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.GlobalNTXBaseline(p)
	if err != nil {
		t.Fatal(err)
	}
	if nd.BusTime > base.BusTime {
		t.Errorf("NETDAG bus %d worse than baseline %d", nd.BusTime, base.BusTime)
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range []*core.Schedule{nd, base} {
		rep, err := validate.SoftTask(p, s, act.ID, 10000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Errorf("schedule failed validation: %+v", rep)
		}
	}
}
