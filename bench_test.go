// Package netdag's root benchmark harness regenerates every table and
// figure of the paper's evaluation (§IV) plus the DESIGN.md ablations.
// Each benchmark times one full regeneration of its artifact and, once
// per process, prints the artifact's rows so `go test -bench=.` doubles
// as the reproduction driver (EXPERIMENTS.md records the expected
// shapes):
//
//	BenchmarkTableI_SoftVsWeaklyHard      — Table I
//	BenchmarkValidation_Soft              — §IV-A, eq. 11
//	BenchmarkValidation_WeaklyHard        — §IV-A, eq. 12
//	BenchmarkFig2_MIMOMakespan            — fig. 2
//	BenchmarkFig3_CartpoleWeaklyHard      — fig. 3
//	BenchmarkFig4_DesignSpaceExploration  — fig. 4
//	BenchmarkAblation_*                   — A1, A2, A3
package netdag

import (
	"fmt"
	"sync"
	"testing"

	"github.com/netdag/netdag/internal/expt"
	"github.com/netdag/netdag/internal/figures"
)

// printOnce guards the one-time artifact dumps so repeated benchmark
// iterations do not spam the output.
var printOnce sync.Map

func dumpOnce(key string, render func() string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println()
		fmt.Print(render())
	}
}

func BenchmarkTableI_SoftVsWeaklyHard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dumpOnce("tableI", func() string {
				tab := expt.NewTable("Table I — same app, both paradigms", "paradigm", "guarantee", "makespan (µs)", "bus (µs)")
				for _, r := range rows {
					tab.Addf("%s\t%s\t%d\t%d", r.Paradigm, r.Guarantee, r.Makespan, r.BusTime)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkTableI_SoftToWeaklyHardBridge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.TableIBridge()
		if i == 0 {
			dumpOnce("bridge", func() string {
				tab := expt.NewTable("Table I bridge — P(soft-0.84 task exhibits (6,10) over horizon n)",
					"horizon n", "probability")
				for _, r := range rows {
					tab.Addf("%d\t%.6f", r.Horizon, r.Probability)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkValidation_Soft(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Validation(10000, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Soft {
			if !r.Pass {
				b.Fatalf("soft validation failed for %s", r.Name)
			}
		}
		if i == 0 {
			dumpOnce("valSoft", func() string {
				tab := expt.NewTable("§IV-A soft validation", "task", "target", "scheduled", "statistic", "pass")
				for _, r := range res.Soft {
					tab.Addf("%s\t%.4f\t%.4f\t%.4f\t%v", r.Name, r.Target, r.Scheduled, r.Statistic, r.Pass)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkValidation_WeaklyHard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Validation(10000, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.WH {
			if !r.Pass {
				b.Fatalf("weakly-hard validation failed for %s", r.Name)
			}
		}
		if i == 0 {
			dumpOnce("valWH", func() string {
				tab := expt.NewTable("§IV-A weakly-hard validation", "task", "requirement", "guarantee", "worst misses", "pass")
				for _, r := range res.WH {
					tab.Addf("%s\t%v\t%v\t%d\t%v", r.Name, r.Requirement, r.Guarantee, r.WorstMisses, r.Pass)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkFig2_MIMOMakespan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := figures.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dumpOnce("fig2", func() string {
				tab := expt.NewTable("Fig. 2 — A_MIMO makespan vs weakly-hard constraints",
					"level", "constrained actuators", "makespan (µs)")
				for _, p := range points {
					tab.Addf("%v\t%d\t%d", p.Level, p.Constrained, p.Makespan)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkFig3_CartpoleWeaklyHard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := figures.Fig3(100, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dumpOnce("fig3", func() string {
				tab := expt.NewTable("Fig. 3 — cartpole balance vs (m,K) faults",
					"window K", "misses m", "mean steps")
				for _, c := range cells {
					tab.Addf("%d\t%d\t%.1f", c.Window, c.Misses, c.MeanSteps)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkFig4_DesignSpaceExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := figures.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dumpOnce("fig4", func() string {
				tab := expt.NewTable("Fig. 4 — power design-space exploration",
					"Q", "worst mean fSS", "diameter", "latency (µs)")
				for _, p := range points {
					lat := "-"
					if p.Feasible {
						lat = fmt.Sprintf("%d", p.Latency)
					}
					tab.Addf("%.1f\t%.3f\t%d\t%s", p.Q, p.WorstFSS, p.Diameter, lat)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkAblation_OplusVsExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.AblationA1()
		if i == 0 {
			dumpOnce("a1", func() string {
				tab := expt.NewTable("A1 — ⊕ abstraction vs exact conjunction",
					"x", "y", "⊕ misses", "exact misses")
				for _, r := range rows {
					tab.Addf("%v\t%v\t%d\t%d", r.X, r.Y, r.OplusMisses, r.ExactMisses)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkAblation_PerFloodVsGlobalNTX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.AblationA2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dumpOnce("a2", func() string {
				tab := expt.NewTable("A2 — NETDAG per-flood χ vs global N_TX baseline",
					"soft target", "NETDAG bus (µs)", "baseline bus (µs)", "NETDAG span (µs)", "baseline span (µs)")
				for _, r := range rows {
					tab.Addf("%.2f\t%d\t%d\t%d\t%d", r.Target, r.NETDAGBus, r.BaselineBus, r.NETDAGSpan, r.BaselineSpan)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkAblation_ExactVsGreedyChi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.AblationA4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dumpOnce("a4", func() string {
				tab := expt.NewTable("A4 — exact vs greedy χ optimization (bus time)",
					"level", "exact bus (µs)", "greedy bus (µs)")
				for _, r := range rows {
					tab.Addf("%v\t%d\t%d", r.Level, r.ExactBus, r.GreedyBus)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkAblation_TopologyDependence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.AblationA6(2000, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dumpOnce("a6", func() string {
				tab := expt.NewTable("A6 — topology dependence: routed TDMA vs flooded LWB",
					"stack", "delivery on design topology", "delivery after mobility")
				for _, r := range rows {
					tab.Addf("%s\t%.3f\t%.3f", r.Stack, r.DesignRate, r.MutatedRate)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkAblation_ClockFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.AblationA5(600, 9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dumpOnce("a5", func() string {
				tab := expt.NewTable("A5 — abstract vs clock-accurate execution",
					"guard (µs)", "end-task hit rate", "beacon capture", "desync rate")
				for _, r := range rows {
					g := "abstract"
					if r.GuardUS >= 0 {
						g = fmt.Sprintf("%.0f", r.GuardUS)
					}
					tab.Addf("%s\t%.3f\t%.3f\t%.3f", g, r.HitRate, r.BeaconRate, r.DesyncRate)
				}
				return tab.String()
			})
		}
	}
}

func BenchmarkAblation_ExactVsGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.AblationA3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dumpOnce("a3", func() string {
				tab := expt.NewTable("A3 — exact vs greedy placement",
					"instance", "exact makespan (µs)", "greedy makespan (µs)")
				for _, r := range rows {
					tab.Addf("%s\t%d\t%d", r.Instance, r.ExactSpan, r.GreedySpan)
				}
				return tab.String()
			})
		}
	}
}
